"""The fleet orchestrator: a control plane above the cloud scheduler.

:class:`FleetOrchestrator` drives many concurrent Ninja migrations over
one cluster.  It composes the subsystem's four parts:

* the :class:`~repro.orchestrator.state.FleetStateStore` (global truth:
  jobs, reservations, in-flight migrations);
* the :class:`~repro.orchestrator.placement.PlacementEngine`
  (reservation-aware destination picking);
* the :class:`~repro.orchestrator.planner.WavePlanner` (bandwidth-aware
  sequencing + destination swapping);
* the :class:`~repro.orchestrator.admission.AdmissionController`
  (priority queue, tenant limits, backpressure).

Each admitted request runs the existing **transactional** Ninja sequence
(:class:`~repro.core.ninja.NinjaMigration`, PR 1) as its own simulation
process.  Compositional guarantees:

* an *aborted* sequence rolled the job back to a safe running state —
  the orchestrator re-enqueues the request with the failed destinations
  blacklisted, up to ``max_attempts``;
* an *unrecoverable* abort (:class:`~repro.errors.MigrationAbortedError`
  — the rollback itself failed) marks the request ``failed`` and stops
  retrying: the job is in an unknown state and human attention beats
  another automated attempt;
* a *committed degrade* counts as completion (the VMs did move).

Health integration: :meth:`watch` subscribes to a
:class:`~repro.core.fault_tolerance.HealthMonitor`; a WARNING enqueues a
high-priority evacuation for every fleet job with VMs on the sick node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.ninja import NinjaMigration
from repro.core.plan import MigrationPlan
from repro.errors import (
    ControllerCrashError,
    FleetError,
    MigrationAbortedError,
    NetworkError,
    PlanError,
    ReproError,
    SchedulerError,
)
from repro.recovery.journal import MigrationJournal
from repro.orchestrator.admission import (
    ABORTED,
    CANCELLED,
    COMPLETED,
    FAILED,
    PENDING,
    RUNNING,
    AdmissionController,
    MigrationRequest,
)
from repro.orchestrator.placement import PlacementEngine
from repro.orchestrator.planner import PlannedMigration, WavePlanner, migration_links
from repro.orchestrator.state import FleetJob, FleetStateStore, SpareArbiter
from repro.sim.events import Event
from repro.vmm.vm import RunState

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.fault_tolerance import HealthMonitor
    from repro.hardware.cluster import Cluster
    from repro.mpi.runtime import MpiJob
    from repro.vmm.qemu import QemuProcess


@dataclass
class FleetConfig:
    """Orchestrator policy knobs."""

    #: Serialise migrations that share a directed link (waves).  ``False``
    #: reproduces the naive fire-everything-concurrently baseline.
    sequencing: bool = True
    #: Run the destination-swap post-pass over each admitted batch.
    destination_swap: bool = True
    #: Per-link budget, expressed in *seconds of solo transfer*: a request
    #: is deferred while the estimated in-flight bytes on any of its links
    #: exceed ``link_budget_s x capacity``.  ``None`` disables the gate.
    link_budget_s: Optional[float] = 30.0
    #: Fleet-wide cap on concurrent Ninja sequences (``None`` = unlimited).
    max_inflight_total: Optional[int] = None
    #: Per-tenant cap on concurrent sequences (``None`` = unlimited).
    max_inflight_per_tenant: Optional[int] = None
    #: Default retry budget for aborted-and-rolled-back requests.
    max_attempts: int = 3
    #: Priority assigned to health-driven evacuations.
    evacuation_priority: int = 100
    #: Minimum bottleneck bandwidth (bytes/s) a migration path must offer
    #: before a request is started.  Requests whose links have degraded
    #: below the floor (chaos, outages) are deferred — re-planned or
    #: re-queued until the path heals or ``degraded_max_wait_s`` elapses.
    #: ``None`` disables the gate.
    viability_floor_Bps: Optional[float] = None
    #: How often to re-probe degraded paths while nothing else can run.
    degraded_recheck_s: float = 5.0
    #: Give up on a degraded path after waiting this long in total.
    degraded_max_wait_s: float = 600.0
    #: How often to re-check requests deferred on a busy job (proactive
    #: checkpoint in flight) or a down VM (awaiting checkpoint restore)
    #: while nothing else can run.
    busy_recheck_s: float = 0.5

    @classmethod
    def naive(cls) -> "FleetConfig":
        """The all-at-once baseline: no sequencing, swapping, or budget."""
        return cls(
            sequencing=False,
            destination_swap=False,
            link_budget_s=None,
            max_inflight_total=None,
            max_inflight_per_tenant=None,
        )


class FleetOrchestrator:
    """Concurrent multi-job Ninja migrations with admission control."""

    def __init__(
        self,
        cluster: "Cluster",
        config: Optional[FleetConfig] = None,
        state: Optional[FleetStateStore] = None,
        ninja: Optional[NinjaMigration] = None,
        journal: Optional[MigrationJournal] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.config = config if config is not None else FleetConfig()
        self.store = state if state is not None else FleetStateStore(cluster)
        self.placement = PlacementEngine(cluster, self.store)
        self.planner = WavePlanner(cluster)
        self.admission = AdmissionController(
            max_inflight_total=self.config.max_inflight_total,
            max_inflight_per_tenant=self.config.max_inflight_per_tenant,
        )
        self.ninja = (
            ninja if ninja is not None else NinjaMigration(cluster, journal=journal)
        )
        #: Shared write-ahead journal (``journal`` is ignored when an
        #: explicit ``ninja`` brings its own).
        self.journal = self.ninja.journal
        #: Spare-host leases across concurrent incident remediations.
        self.arbiter = SpareArbiter(cluster)
        #: Set when a ``controller.crash.*`` fault killed the control
        #: plane: the scan loop stops, running sequences die at their
        #: next boundary, and no graceful bookkeeping runs — recovery
        #: (:class:`~repro.recovery.recovery.RecoveryManager`) takes over.
        self.crashed = False
        self.crash_error = ""
        self.crash_event = Event(self.env)
        self._procs: Dict[MigrationRequest, object] = {}
        self.requests: List[MigrationRequest] = []
        self._running: List[MigrationRequest] = []
        #: Links footprint of each running request (sequencing gate).
        self._running_footprint: Dict[MigrationRequest, PlannedMigration] = {}
        self._wake: Optional[Event] = None
        self._loop_proc = None
        self._monitor: Optional["HealthMonitor"] = None
        self._settle_waiters: List[Event] = []
        #: Number of requests started by each scan that started any —
        #: the de-facto concurrency of each execution wave.
        self.wave_log: List[int] = []
        self.swaps_applied = 0

    # -- registration / submission ----------------------------------------------------

    def register_job(
        self,
        job_id: str,
        job: "MpiJob",
        qemus: Sequence["QemuProcess"],
        tenant: str = "default",
        rank_main=None,
    ) -> FleetJob:
        return self.store.register_job(
            job_id, job, qemus, tenant=tenant, rank_main=rank_main
        )

    def submit(
        self,
        job_id: str,
        kind: str = "fallback",
        priority: int = 0,
        consolidate_to: Optional[int] = None,
        dst_hosts: Optional[Sequence[str]] = None,
        max_attempts: Optional[int] = None,
        incident_id: Optional[int] = None,
    ) -> MigrationRequest:
        """Queue a migration request for a registered job."""
        record = self.store.job(job_id)
        request = MigrationRequest(
            fleet_job=record,
            kind=kind,
            priority=priority,
            consolidate_to=consolidate_to,
            dst_hosts=list(dst_hosts) if dst_hosts is not None else None,
            submitted_at=self.env.now,
            max_attempts=(
                max_attempts if max_attempts is not None else self.config.max_attempts
            ),
            incident_id=incident_id,
            done=Event(self.env),
        )
        self.requests.append(request)
        self.admission.submit(request)
        self.journal.append(
            "request", request=request.request_id, job=job_id,
            request_kind=kind, priority=priority,
            dst_hosts=list(dst_hosts) if dst_hosts is not None else None,
        )
        self.cluster.trace(
            "fleet", "submitted", request=request.request_id, job=job_id,
            kind=kind, priority=priority,
        )
        self._ensure_loop()
        self._kick()
        return request

    # -- health-monitor integration ---------------------------------------------------

    def watch(self, monitor: "HealthMonitor") -> None:
        """React to health WARNINGs with high-priority evacuations."""
        self._monitor = monitor
        monitor.subscribe(self._on_health_event)

    def _on_health_event(self, event) -> None:
        from repro.core.fault_tolerance import Health

        if event.state is not Health.WARNING:
            return
        for record in self.store.jobs_on(event.node):
            if any(
                r.kind == "evacuate" and not r.terminal
                for r in self.requests
                if r.fleet_job is record
            ):
                continue
            if any(q.vm.state is RunState.SHUTOFF for q in record.qemus):
                # The node did not merely degrade — its VMs are gone.
                # Evacuation cannot park dead guests; checkpoint-restore
                # remediation owns this job now.
                self.cluster.trace(
                    "fleet", "evacuation_skipped", job=record.job_id,
                    node=event.node, reason="vm-down",
                )
                continue
            self.cluster.trace(
                "fleet", "evacuation_enqueued", job=record.job_id, node=event.node,
                reason=event.reason,
            )
            self.submit(
                record.job_id,
                kind="evacuate",
                priority=self.config.evacuation_priority,
            )

    # -- incident-response integration --------------------------------------------------

    def nudge(self) -> None:
        """Public kick: restart/wake the scan loop (incident readmission)."""
        self._ensure_loop()
        self._kick()

    def cancel(self, request: MigrationRequest, reason: str = "") -> bool:
        """Withdraw a queued (not yet running) request.

        Incident remediation cancels requests whose explicit destinations
        became unreachable and resubmits them as evacuations.  Running
        sequences are left alone — the transactional Ninja abort path
        already rolls those back.  Returns ``True`` if the request was
        cancelled.
        """
        if request.terminal or request.status == RUNNING:
            return False
        # The heap entry stays; select() skips terminal requests.
        self._finish(request, CANCELLED, error=reason)
        self._kick()
        return True

    def affected_requests(self, link_names: Sequence[str]) -> List[MigrationRequest]:
        """Requests whose migration traffic depends on the named links.

        Blast-radius probe for the incident correlator: running requests
        whose claimed footprint crosses an affected link, plus pending
        requests that can no longer route (or whose route crosses one).
        """
        names = set(link_names)
        affected: List[MigrationRequest] = []
        for request, item in self._running_footprint.items():
            if any(dlink.link.name in names for dlink in item.links):
                affected.append(request)
        for request in self.admission.pending:
            if request.defer_reason in ("degraded-link", "no-placement"):
                affected.append(request)
            elif self._route_crosses(request, names):
                affected.append(request)
        return affected

    def _route_crosses(self, request: MigrationRequest, names: set) -> bool:
        """Best-effort: would this pending request's traffic cross ``names``?"""
        if self.cluster.eth_fabric is None or not request.dst_hosts:
            return False
        topology = self.cluster.eth_fabric.topology
        for src in request.fleet_job.hosts():
            for dst in request.dst_hosts:
                if src == dst:
                    continue
                try:
                    path = topology.path(src, dst)
                except NetworkError:
                    return True  # unroutable already
                if any(dlink.link.name in names for dlink in path):
                    return True
        return False

    # -- completion observation ---------------------------------------------------------

    @property
    def settled(self) -> bool:
        """True when every submitted request reached a terminal state."""
        return not self._running and all(r.terminal for r in self.requests)

    def all_settled(self) -> Event:
        """Event firing once every submitted request is terminal."""
        event = Event(self.env)
        if self.settled:
            event.succeed(self)
        else:
            self._settle_waiters.append(event)
        return event

    def _check_settled(self) -> None:
        if not self.settled:
            return
        waiters, self._settle_waiters = self._settle_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed(self)

    # -- the scan/execute loop ------------------------------------------------------------

    def _ensure_loop(self) -> None:
        if self._loop_proc is None or not self._loop_proc.is_alive:
            self._loop_proc = self.env.process(self._run(), name="fleet.loop")

    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)

    def _run(self):
        degraded_wait = 0.0
        busy_wait = 0.0
        while True:
            if self.crashed:
                return
            started = self._scan()
            if started:
                degraded_wait = 0.0
                busy_wait = 0.0
            if not self._running and not len(self.admission):
                self._check_settled()
                return  # drained; a new submit restarts the loop
            if started == 0 and not self._running and len(self.admission):
                degraded = [
                    r for r in self.admission.pending
                    if r.defer_reason == "degraded-link"
                ]
                if degraded and degraded_wait < self.config.degraded_max_wait_s:
                    # Degraded links heal (outages end, chaos schedules
                    # expire): keep re-probing instead of failing the
                    # requests outright.
                    degraded_wait += self.config.degraded_recheck_s
                    self.cluster.trace(
                        "fleet", "degraded_wait",
                        pending=len(degraded),
                        waited_s=round(degraded_wait, 1),
                    )
                    yield self.env.timeout(self.config.degraded_recheck_s)
                    continue
                waiting = [
                    r for r in self.admission.pending
                    if r.defer_reason in ("job-busy", "vm-down")
                ]
                if waiting and busy_wait < self.config.degraded_max_wait_s:
                    # Busy jobs finish their checkpoint; down VMs come
                    # back through checkpoint restore.  Both resolve on
                    # their own clock — poll, don't fail.
                    busy_wait += self.config.busy_recheck_s
                    yield self.env.timeout(self.config.busy_recheck_s)
                    continue
                # Nothing runs, nothing could start, and no completion
                # will ever wake us: the queued requests are infeasible.
                self._fail_stuck_requests()
                continue
            self._wake = Event(self.env)
            yield self._wake
            self._wake = None

    def _fail_stuck_requests(self) -> None:
        for request in self.admission.pending:
            if request.terminal:
                continue
            self._finish(
                request,
                FAILED,
                error=f"no feasible placement ({request.defer_reason or 'unknown'})",
            )

    def _scan(self) -> int:
        """One admission/planning/start pass; returns migrations started."""
        if self.crashed:
            return 0
        batch = self.admission.select(self._running)
        if not batch:
            return 0

        # 1. placement — reservation-aware, blacklist-honouring.
        planned: List[PlannedMigration] = []
        by_item: Dict[PlannedMigration, MigrationRequest] = {}
        for request in batch:
            if request.fleet_job.busy:
                # A proactive checkpoint (or an externally driven
                # sequence) holds the job's SymVirt exclusivity right
                # now; admission only sees *requests*, so re-check here.
                request.defer_reason = "job-busy"
                self.admission.stats.defer("job-busy")
                self.admission.submit(request, requeue=True)
                continue
            if any(
                q.vm.state is RunState.SHUTOFF for q in request.fleet_job.qemus
            ):
                # A host died under this job: migration would park dead
                # guests.  Hold the request until checkpoint restore
                # replaces the VMs (or the wait budget expires).
                request.defer_reason = "vm-down"
                self.admission.stats.defer("vm-down")
                self.admission.submit(request, requeue=True)
                continue
            try:
                plan = self._build_plan(request)
            except (SchedulerError, PlanError, FleetError) as err:
                request.defer_reason = "no-placement"
                request.error = str(err)
                self.admission.stats.defer("no-placement")
                self.admission.submit(request, requeue=True)
                continue
            if self._below_viability(plan) or self._crosses_blacklist(plan):
                request.defer_reason = "degraded-link"
                self.admission.stats.defer("degraded-link")
                self.admission.submit(request, requeue=True)
                continue
            try:
                item = PlannedMigration(plan).refresh(self.cluster)
            except NetworkError as err:
                # No route mid-outage (and no viability floor armed to
                # catch it earlier): defer, don't crash the scan loop.
                request.defer_reason = "degraded-link"
                request.error = str(err)
                self.admission.stats.defer("degraded-link")
                self.admission.submit(request, requeue=True)
                continue
            planned.append(item)
            by_item[item] = request

        if not planned:
            return 0

        # 2. destination-swap post-pass over the whole batch.
        if self.config.destination_swap and len(planned) > 1:
            self.planner.destination_swap(planned)
            if self.planner.swaps_applied:
                self.swaps_applied += self.planner.swaps_applied
                self.cluster.trace(
                    "fleet", "destination_swap", swaps=self.planner.swaps_applied
                )

        # 3. sequencing: only the first (link-disjoint) wave starts now.
        busy_links = frozenset().union(
            *(item.links for item in self._running_footprint.values())
        ) if self._running_footprint else frozenset()
        if self.config.sequencing:
            waves = self.planner.waves(planned, busy_links=busy_links)
            startable, held = waves[0], [i for wave in waves[1:] for i in wave]
        else:
            startable, held = list(planned), []
        for item in held:
            request = by_item[item]
            request.defer_reason = "link-conflict"
            self.admission.stats.defer("link-conflict")
            self.admission.submit(request, requeue=True)

        # 4. link budget + reservation claims, then launch.
        started = 0
        inflight_loads = self._inflight_link_loads()
        for item in startable:
            request = by_item[item]
            if self._over_budget(item, inflight_loads):
                request.defer_reason = "link-budget"
                self.admission.stats.defer("link-budget")
                self.admission.submit(request, requeue=True)
                continue
            try:
                reservations = self.store.claim_plan(item.plan, owner=request)
            except FleetError as err:
                request.defer_reason = "reservation"
                request.error = str(err)
                self.admission.stats.defer("reservation")
                self.admission.submit(request, requeue=True)
                continue
            for reservation in reservations:
                self.journal.append(
                    "reservation", request=request.request_id,
                    label=item.plan.label, host=reservation.host,
                    nbytes=reservation.nbytes, hca=reservation.hca,
                )
            self._start(request, item)
            for dlink, nbytes in item.bytes_by_link.items():
                inflight_loads[dlink] = inflight_loads.get(dlink, 0.0) + nbytes
            started += 1
        if started:
            self.wave_log.append(started)
        return started

    # -- gates & helpers ---------------------------------------------------------------

    def _inflight_link_loads(self) -> Dict[object, float]:
        loads: Dict[object, float] = {}
        for item in self._running_footprint.values():
            for dlink, nbytes in item.bytes_by_link.items():
                loads[dlink] = loads.get(dlink, 0.0) + nbytes
        return loads

    def _below_viability(self, plan: MigrationPlan) -> bool:
        """True when any migration path's bottleneck sits below the
        viability floor — starting now would crawl through a degraded
        link (or abort outright on a down one)."""
        floor = self.config.viability_floor_Bps
        if floor is None or self.cluster.eth_fabric is None:
            return False
        topology = self.cluster.eth_fabric.topology
        for entry in plan.entries:
            if entry.is_self_migration:
                continue
            try:
                bottleneck = topology.bottleneck_Bps(
                    entry.qemu.node.name, entry.dst_host
                )
            except NetworkError:
                return True  # no route at all (link down mid-outage)
            if bottleneck < floor:
                return True
        return False

    def _crosses_blacklist(self, plan: MigrationPlan) -> bool:
        """True when the plan's footprint touches a blacklisted link.

        Deferred under the same ``"degraded-link"`` reason as the
        viability floor so the request rides the degraded re-probe loop
        and starts once the incident response lifts the blacklist.
        """
        if not self.planner.blacklisted:
            return False
        try:
            links = migration_links(self.cluster, plan)
        except NetworkError:
            return True  # unroutable — treat like a degraded path
        return self.planner.crosses_blacklist(links)

    def _over_budget(self, item: PlannedMigration, loads: Dict[object, float]) -> bool:
        budget_s = self.config.link_budget_s
        if budget_s is None:
            return False
        for dlink, nbytes in item.bytes_by_link.items():
            current = loads.get(dlink, 0.0)
            # An idle link always admits one request — the budget bounds
            # *stacking*, it must not make a big migration infeasible.
            if current > 0 and current + nbytes > budget_s * dlink.capacity_Bps:
                return True
        return False

    def _build_plan(self, request: MigrationRequest) -> MigrationPlan:
        record = request.fleet_job
        qemus = record.qemus
        exclude = set(request.blacklist)
        if request.kind == "fallback":
            hosts = self.placement.pick_packed(
                qemus,
                self.cluster.eth_only_nodes(),
                consolidate_to=request.consolidate_to,
                exclude=exclude,
            )
            attach = False
        elif request.kind == "recovery":
            hosts = self.placement.pick_spread(
                qemus,
                self.cluster.ib_nodes(),
                exclude=exclude,
                need_hca=True,
            )
            attach = True
        elif request.kind == "evacuate":
            hosts = self.placement.pick_spread(
                qemus,
                self._evacuation_candidates(
                    record, exclude, incident_id=request.incident_id
                ),
                exclude=exclude,
                kind="healthy",
            )
            attach = None
        elif request.kind == "spread":
            if not request.dst_hosts:
                raise SchedulerError("spread request needs explicit dst_hosts")
            hosts = [h for h in request.dst_hosts if h not in exclude]
            if len(hosts) < len(request.dst_hosts):
                raise SchedulerError("all explicit destinations are blacklisted")
            attach = None
        else:
            raise FleetError(f"unknown request kind {request.kind!r}")
        return MigrationPlan.build(
            self.cluster, qemus, hosts, attach_ib=attach, label=request.label
        )

    def _evacuation_candidates(
        self, record: FleetJob, exclude, incident_id: Optional[int] = None
    ) -> List:
        """Empty healthy nodes, current hosts excluded.

        Dead hosts never qualify, and hosts the spare arbiter has leased
        to a *different* incident are invisible — that is what keeps two
        overlapping remediations from landing on the same spare.
        """
        current = set(record.hosts())
        leased_away = self.arbiter.leased_to_others(
            incident_id if incident_id is not None else -1
        )
        healthy = None
        if self._monitor is not None:
            healthy = set(self._monitor.healthy_nodes())
        nodes = []
        for name in sorted(self.cluster.nodes):
            if name in current or name in exclude or name in leased_away:
                continue
            if healthy is not None and name not in healthy:
                continue
            node = self.cluster.node(name)
            if node.vms or node.failed:
                continue
            nodes.append(node)
        return nodes

    # -- execution ----------------------------------------------------------------------

    def _start(self, request: MigrationRequest, item: PlannedMigration) -> None:
        request.status = RUNNING
        request.attempts += 1
        request.started_at = self.env.now
        request.defer_reason = ""
        request.fleet_job.busy = True
        self._running.append(request)
        self._running_footprint[request] = item
        self.store.begin_migration(request, item.plan)
        self.journal.append(
            "request-started", request=request.request_id,
            label=item.plan.label, attempt=request.attempts,
        )
        self.cluster.trace(
            "fleet", "started", request=request.request_id, job=request.job_id,
            label=item.plan.label, attempt=request.attempts,
            concurrency=len(self._running),
        )
        self._procs[request] = self.env.process(
            self._execute(request, item), name=f"fleet.{item.plan.label}"
        )

    def _execute(self, request: MigrationRequest, item: PlannedMigration):
        plan = item.plan
        try:
            try:
                result = yield from self.ninja.execute(
                    request.fleet_job.job, plan
                )
            except ControllerCrashError as err:
                # The control plane died.  No bookkeeping, no retry, no
                # release — a dead orchestrator does nothing; recovery
                # reconstructs the truth from the journal.
                self._mark_crashed(str(err))
                return
            except MigrationAbortedError as err:
                self._finish(request, FAILED, error=f"unrecoverable: {err}")
                return
            except ReproError as err:
                # e.g. the job finished before the trigger landed.
                self._finish(request, FAILED, error=str(err))
                return
            request.result = result
            if result.aborted and not result.committed:
                for entry in plan.entries:
                    if not entry.is_self_migration:
                        request.blacklist.add(entry.dst_host)
                if request.attempts >= request.max_attempts:
                    self._finish(request, ABORTED, error=result.error)
                else:
                    self.cluster.trace(
                        "fleet", "retry_enqueued", request=request.request_id,
                        job=request.job_id, blacklisted=sorted(request.blacklist),
                    )
                    self.admission.submit(request, requeue=True)
            else:
                self._finish(request, COMPLETED)
        finally:
            self._procs.pop(request, None)
            if not self.crashed:
                request.fleet_job.busy = False
                self.store.end_migration(request)
                self.journal.append(
                    "release", request=request.request_id, label=plan.label
                )
                if request in self._running:
                    self._running.remove(request)
                self._running_footprint.pop(request, None)
                if request.status == RUNNING:
                    request.status = PENDING
                self._kick()

    def _finish(self, request: MigrationRequest, status: str, error: str = "") -> None:
        request.status = status
        request.error = error
        request.finished_at = self.env.now
        self.journal.append(
            "request-finished", request=request.request_id, status=status,
        )
        self.cluster.trace(
            "fleet", status, request=request.request_id, job=request.job_id,
            error=error,
        )
        if request.done is not None and not request.done.triggered:
            request.done.succeed(request)
        self._check_settled()

    # -- crash handling -----------------------------------------------------------

    def _mark_crashed(self, error: str) -> None:
        if self.crashed:
            return
        self.crashed = True
        self.crash_error = error
        self.cluster.trace("fleet", "controller_crash", error=error)
        if not self.crash_event.triggered:
            self.crash_event.succeed(self)

    def crash_drained(self) -> Event:
        """Event firing once every sequence process of the crashed
        controller has stopped (they die at their next phase boundary;
        their QEMU precopy streams keep running independently).  Drive
        recovery only after this fires, or it would race the zombies."""
        alive = [p for p in self._procs.values() if p.is_alive]
        if not alive:
            event = Event(self.env)
            event.succeed(self)
            return event
        return self.env.all_of(alive)
