"""The fleet state store: global truth for multi-job orchestration.

One :class:`FleetStateStore` per datacenter tracks every registered job,
every in-flight migration, and — crucially — **reservations** of
destination capacity.  Placement decisions made in the same simulated
tick see each other through the store, so two plans can never
double-book the same host RAM or the same VMM-bypass HCA: the paper's
single-sequence scheduler validated capacity against *instantaneous*
free memory, which is only safe when exactly one plan exists at a time.

Reservations are plain bookkeeping (no simulated time cost) and are
deliberately conservative: a reservation is held from planning until
the migration sequence terminates, even though the real RAM claim
(:meth:`~repro.vmm.qemu.QemuProcess.relocate`) happens mid-sequence.
Double-counting during that window can only defer a later plan, never
oversubscribe a host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.errors import FleetError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.plan import MigrationPlan
    from repro.hardware.cluster import Cluster
    from repro.hardware.node import PhysicalNode
    from repro.mpi.runtime import MpiJob
    from repro.vmm.qemu import QemuProcess

_reservation_ids = count()


@dataclass(eq=False)
class Reservation:
    """A claim on destination-host capacity (and optionally its HCA)."""

    host: str
    nbytes: int
    owner: object
    hca: bool = False
    reservation_id: int = field(default_factory=lambda: next(_reservation_ids))
    #: Cleared when released; double-release is an error.
    active: bool = True

    def __repr__(self) -> str:  # pragma: no cover
        kind = "+hca" if self.hca else ""
        return f"<Reservation #{self.reservation_id} {self.host} {self.nbytes}B{kind}>"


@dataclass
class FleetJob:
    """One tenant job under fleet management."""

    job_id: str
    tenant: str
    job: "MpiJob"
    qemus: List["QemuProcess"]
    #: True while a migration sequence for this job is in flight — at
    #: most one sequence may own a job's VMs at a time (the SymVirt park
    #: is job-global).
    busy: bool = False

    def hosts(self) -> List[str]:
        return [q.node.name for q in self.qemus]


class FleetStateStore:
    """Reservations + job/migration registries for one cluster."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.env = cluster.env
        self._reservations: Dict[str, List[Reservation]] = {}
        self.jobs: Dict[str, FleetJob] = {}
        #: Plans currently executing (plan → owner token).
        self.inflight: Dict[object, "MigrationPlan"] = {}
        #: Monotone counters for diagnostics / benchmark artifacts.
        self.total_reserved = 0
        self.total_released = 0

    # -- job registry ----------------------------------------------------------

    def register_job(
        self,
        job_id: str,
        job: "MpiJob",
        qemus: Sequence["QemuProcess"],
        tenant: str = "default",
    ) -> FleetJob:
        if job_id in self.jobs:
            raise FleetError(f"duplicate job id {job_id!r}")
        record = FleetJob(job_id=job_id, tenant=tenant, job=job, qemus=list(qemus))
        self.jobs[job_id] = record
        self.cluster.trace(
            "fleet", "job_registered", job=job_id, tenant=tenant,
            hosts=record.hosts(),
        )
        return record

    def job(self, job_id: str) -> FleetJob:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise FleetError(f"unknown job {job_id!r}") from None

    def jobs_on(self, host: str) -> List[FleetJob]:
        """Jobs with at least one VM currently on ``host``."""
        return [
            record
            for record in self.jobs.values()
            if any(q.node.name == host for q in record.qemus)
        ]

    # -- capacity reservations --------------------------------------------------

    def reserved_bytes(self, host: str) -> int:
        return sum(r.nbytes for r in self._reservations.get(host, ()))

    def hca_reserved(self, host: str) -> bool:
        return any(r.hca for r in self._reservations.get(host, ()))

    def available_bytes(self, node: "PhysicalNode") -> float:
        """Free memory net of reservations (never negative)."""
        return max(node.free_memory - self.reserved_bytes(node.name), 0.0)

    def reserve(
        self, host: str, nbytes: int, owner: object, hca: bool = False
    ) -> Reservation:
        """Claim ``nbytes`` of ``host`` RAM (and its HCA when asked).

        Raises :class:`~repro.errors.FleetError` when the claim would
        oversubscribe the host — the invariant the property tests pin.
        """
        node = self.cluster.node(host)
        if nbytes > self.available_bytes(node):
            raise FleetError(
                f"{host}: reserving {nbytes} B would oversubscribe "
                f"({self.available_bytes(node):.0f} B available after "
                f"{self.reserved_bytes(host)} B already reserved)"
            )
        if hca and self.hca_reserved(host):
            raise FleetError(f"{host}: HCA already reserved")
        reservation = Reservation(host=host, nbytes=int(nbytes), owner=owner, hca=hca)
        self._reservations.setdefault(host, []).append(reservation)
        self.total_reserved += 1
        return reservation

    def release(self, reservation: Reservation) -> None:
        if not reservation.active:
            raise FleetError(f"double release of {reservation!r}")
        reservation.active = False
        bucket = self._reservations.get(reservation.host, [])
        bucket.remove(reservation)
        if not bucket:
            self._reservations.pop(reservation.host, None)
        self.total_released += 1

    def release_owner(self, owner: object) -> int:
        """Release every reservation held by ``owner``; returns the count."""
        mine = [
            r for bucket in self._reservations.values() for r in bucket
            if r.owner is owner
        ]
        for reservation in mine:
            self.release(reservation)
        return len(mine)

    def move(self, reservation: Reservation, new_host: str) -> Reservation:
        """Re-home a reservation (the planner's destination-swap pass).

        Atomic: the original claim is only dropped once the new host
        accepted the bytes, so a failed move leaves state unchanged.
        """
        replacement = self.reserve(
            new_host, reservation.nbytes, reservation.owner, hca=reservation.hca
        )
        self.release(reservation)
        return replacement

    # -- plan-level claims -------------------------------------------------------

    def claim_plan(self, plan: "MigrationPlan", owner: Optional[object] = None) -> List[Reservation]:
        """Reserve every destination the plan lands on (keyed by ``owner``).

        Self-migrations reserve nothing (the VM already owns its RAM).
        """
        key = owner if owner is not None else plan
        claimed: List[Reservation] = []
        try:
            for entry in plan.entries:
                if entry.is_self_migration:
                    continue
                claimed.append(
                    self.reserve(
                        entry.dst_host,
                        entry.qemu.vm.memory.size_bytes,
                        key,
                        hca=entry.attach_ib,
                    )
                )
        except FleetError:
            for reservation in claimed:
                self.release(reservation)
            raise
        return claimed

    # -- in-flight migrations -----------------------------------------------------

    def begin_migration(self, owner: object, plan: "MigrationPlan") -> None:
        if owner in self.inflight:
            raise FleetError(f"owner {owner!r} already has a migration in flight")
        self.inflight[owner] = plan

    def end_migration(self, owner: object) -> None:
        self.inflight.pop(owner, None)
        self.release_owner(owner)

    def inflight_plans(self) -> List["MigrationPlan"]:
        return list(self.inflight.values())

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert no host is oversubscribed (free memory covers claims)."""
        for host, bucket in self._reservations.items():
            node = self.cluster.node(host)
            claimed = sum(r.nbytes for r in bucket)
            if claimed > node.free_memory:
                raise FleetError(
                    f"{host}: {claimed} B reserved exceeds "
                    f"{node.free_memory:.0f} B free"
                )
