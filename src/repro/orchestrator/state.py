"""The fleet state store: global truth for multi-job orchestration.

One :class:`FleetStateStore` per datacenter tracks every registered job,
every in-flight migration, and — crucially — **reservations** of
destination capacity.  Placement decisions made in the same simulated
tick see each other through the store, so two plans can never
double-book the same host RAM or the same VMM-bypass HCA: the paper's
single-sequence scheduler validated capacity against *instantaneous*
free memory, which is only safe when exactly one plan exists at a time.

Reservations are plain bookkeeping (no simulated time cost) and are
deliberately conservative: a reservation is held from planning until
the migration sequence terminates, even though the real RAM claim
(:meth:`~repro.vmm.qemu.QemuProcess.relocate`) happens mid-sequence.
Double-counting during that window can only defer a later plan, never
oversubscribe a host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.errors import FleetError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.plan import MigrationPlan
    from repro.hardware.cluster import Cluster
    from repro.hardware.node import PhysicalNode
    from repro.mpi.runtime import MpiJob
    from repro.vmm.qemu import QemuProcess

_reservation_ids = count()


@dataclass(eq=False)
class Reservation:
    """A claim on destination-host capacity (and optionally its HCA)."""

    host: str
    nbytes: int
    owner: object
    hca: bool = False
    reservation_id: int = field(default_factory=lambda: next(_reservation_ids))
    #: Cleared when released; double-release is an error.
    active: bool = True

    def __repr__(self) -> str:  # pragma: no cover
        kind = "+hca" if self.hca else ""
        return f"<Reservation #{self.reservation_id} {self.host} {self.nbytes}B{kind}>"


@dataclass
class FleetJob:
    """One tenant job under fleet management."""

    job_id: str
    tenant: str
    job: "MpiJob"
    qemus: List["QemuProcess"]
    #: True while a migration sequence for this job is in flight — at
    #: most one sequence may own a job's VMs at a time (the SymVirt park
    #: is job-global).  Proactive checkpoints hold the same exclusivity.
    busy: bool = False
    #: The job's SPMD program, kept so a checkpoint restore can relaunch
    #: the replacement :class:`~repro.mpi.runtime.MpiJob` from the
    #: restored epoch.  None means restore boots the VMs but cannot
    #: resume computation.
    rank_main: Optional[Callable] = None

    def hosts(self) -> List[str]:
        return [q.node.name for q in self.qemus]


class FleetStateStore:
    """Reservations + job/migration registries for one cluster."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.env = cluster.env
        self._reservations: Dict[str, List[Reservation]] = {}
        self.jobs: Dict[str, FleetJob] = {}
        #: Plans currently executing (plan → owner token).
        self.inflight: Dict[object, "MigrationPlan"] = {}
        #: Monotone counters for diagnostics / benchmark artifacts.
        self.total_reserved = 0
        self.total_released = 0

    # -- job registry ----------------------------------------------------------

    def register_job(
        self,
        job_id: str,
        job: "MpiJob",
        qemus: Sequence["QemuProcess"],
        tenant: str = "default",
        rank_main: Optional[Callable] = None,
    ) -> FleetJob:
        if job_id in self.jobs:
            raise FleetError(f"duplicate job id {job_id!r}")
        record = FleetJob(
            job_id=job_id, tenant=tenant, job=job, qemus=list(qemus),
            rank_main=rank_main,
        )
        self.jobs[job_id] = record
        self.cluster.trace(
            "fleet", "job_registered", job=job_id, tenant=tenant,
            hosts=record.hosts(),
        )
        return record

    def replace_job(
        self,
        job_id: str,
        job: "MpiJob",
        qemus: Sequence["QemuProcess"],
    ) -> FleetJob:
        """Swap a registered job's MpiJob + VMs for restored replacements.

        Checkpoint restore boots *new* QEMU processes and a *new*
        :class:`~repro.mpi.runtime.MpiJob`; the fleet identity (job id,
        tenant, SPMD program) survives the swap.  The old objects stay
        reachable through the journal/traces only.
        """
        record = self.job(job_id)
        record.job = job
        record.qemus = list(qemus)
        record.busy = False
        self.cluster.trace(
            "fleet", "job_replaced", job=job_id, hosts=record.hosts(),
        )
        return record

    def job(self, job_id: str) -> FleetJob:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise FleetError(f"unknown job {job_id!r}") from None

    def jobs_on(self, host: str) -> List[FleetJob]:
        """Jobs with at least one VM currently on ``host``."""
        return [
            record
            for record in self.jobs.values()
            if any(q.node.name == host for q in record.qemus)
        ]

    # -- capacity reservations --------------------------------------------------

    def reserved_bytes(self, host: str) -> int:
        return sum(r.nbytes for r in self._reservations.get(host, ()))

    def hca_reserved(self, host: str) -> bool:
        return any(r.hca for r in self._reservations.get(host, ()))

    def available_bytes(self, node: "PhysicalNode") -> float:
        """Free memory net of reservations (never negative)."""
        return max(node.free_memory - self.reserved_bytes(node.name), 0.0)

    def reserve(
        self, host: str, nbytes: int, owner: object, hca: bool = False
    ) -> Reservation:
        """Claim ``nbytes`` of ``host`` RAM (and its HCA when asked).

        Raises :class:`~repro.errors.FleetError` when the claim would
        oversubscribe the host — the invariant the property tests pin.
        """
        node = self.cluster.node(host)
        if nbytes > self.available_bytes(node):
            raise FleetError(
                f"{host}: reserving {nbytes} B would oversubscribe "
                f"({self.available_bytes(node):.0f} B available after "
                f"{self.reserved_bytes(host)} B already reserved)"
            )
        if hca and self.hca_reserved(host):
            raise FleetError(f"{host}: HCA already reserved")
        reservation = Reservation(host=host, nbytes=int(nbytes), owner=owner, hca=hca)
        self._reservations.setdefault(host, []).append(reservation)
        self.total_reserved += 1
        return reservation

    def release(self, reservation: Reservation) -> None:
        if not reservation.active:
            raise FleetError(f"double release of {reservation!r}")
        reservation.active = False
        bucket = self._reservations.get(reservation.host, [])
        bucket.remove(reservation)
        if not bucket:
            self._reservations.pop(reservation.host, None)
        self.total_released += 1

    def release_owner(self, owner: object) -> int:
        """Release every reservation held by ``owner``; returns the count."""
        mine = [
            r for bucket in self._reservations.values() for r in bucket
            if r.owner is owner
        ]
        for reservation in mine:
            self.release(reservation)
        return len(mine)

    def move(self, reservation: Reservation, new_host: str) -> Reservation:
        """Re-home a reservation (the planner's destination-swap pass).

        Atomic: the original claim is only dropped once the new host
        accepted the bytes, so a failed move leaves state unchanged.
        """
        replacement = self.reserve(
            new_host, reservation.nbytes, reservation.owner, hca=reservation.hca
        )
        self.release(reservation)
        return replacement

    # -- plan-level claims -------------------------------------------------------

    def claim_plan(self, plan: "MigrationPlan", owner: Optional[object] = None) -> List[Reservation]:
        """Reserve every destination the plan lands on (keyed by ``owner``).

        Self-migrations reserve nothing (the VM already owns its RAM).
        """
        key = owner if owner is not None else plan
        claimed: List[Reservation] = []
        try:
            for entry in plan.entries:
                if entry.is_self_migration:
                    continue
                claimed.append(
                    self.reserve(
                        entry.dst_host,
                        entry.qemu.vm.memory.size_bytes,
                        key,
                        hca=entry.attach_ib,
                    )
                )
        except FleetError:
            for reservation in claimed:
                self.release(reservation)
            raise
        return claimed

    # -- in-flight migrations -----------------------------------------------------

    def begin_migration(self, owner: object, plan: "MigrationPlan") -> None:
        if owner in self.inflight:
            raise FleetError(f"owner {owner!r} already has a migration in flight")
        self.inflight[owner] = plan

    def end_migration(self, owner: object) -> None:
        self.inflight.pop(owner, None)
        self.release_owner(owner)

    def inflight_plans(self) -> List["MigrationPlan"]:
        return list(self.inflight.values())

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert no host is oversubscribed (free memory covers claims)."""
        for host, bucket in self._reservations.items():
            node = self.cluster.node(host)
            claimed = sum(r.nbytes for r in bucket)
            if claimed > node.free_memory:
                raise FleetError(
                    f"{host}: {claimed} B reserved exceeds "
                    f"{node.free_memory:.0f} B free"
                )


@dataclass(eq=False)
class _SpareClaim:
    """One incident's pending request for a set of spare hosts."""

    incident_id: int
    hosts: frozenset
    blast_radius: int
    seq: int
    event: Event


class SpareArbiter:
    """Leases of spare hosts across *concurrent incidents*.

    Two overlapping incidents (a fiber cut evacuating around a dark WAN
    and a host failure restoring from checkpoint) compete for the same
    thin pool of spare hosts.  The arbiter serialises that competition:

    * a remediation **acquires** every spare it needs *atomically* — it
      either gets all of them or waits, never holds a subset (no
      hold-and-wait, hence no deadlock between incidents);
    * waiting claims are granted ordered by **blast radius** (bigger
      incident first; FIFO within a tie), so the incident threatening
      more requests is never starved by a smaller one;
    * a host leased to one incident is invisible to others until
      **released**; re-acquiring under the same incident id is free
      (remediation steps of one incident compose).

    Leases are advisory concurrency control *between incidents*; RAM
    capacity itself stays guarded by :class:`FleetStateStore`
    reservations.  ``double_leases`` audits the invariant the benchmark
    pins: it must stay empty.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.env = cluster.env
        #: host name → incident id holding it.
        self.leases: Dict[str, int] = {}
        self._waiting: List[_SpareClaim] = []
        self._seq = count()
        #: (time, incident, hosts) audit of every grant.
        self.grants: List[tuple] = []
        #: (host, holder, claimant) conflicts that slipped through — the
        #: no-double-reservation invariant says this stays empty.
        self.double_leases: List[tuple] = []

    # -- queries -----------------------------------------------------------------

    def holder(self, host: str) -> Optional[int]:
        return self.leases.get(host)

    def leased_to_others(self, incident_id: int) -> set:
        """Hosts currently leased to a *different* incident."""
        return {
            host for host, owner in self.leases.items() if owner != incident_id
        }

    def held_by(self, incident_id: int) -> List[str]:
        return sorted(
            host for host, owner in self.leases.items() if owner == incident_id
        )

    # -- lease lifecycle -----------------------------------------------------------

    def acquire(self, incident_id: int, hosts: Sequence[str], blast_radius: int = 0):
        """Lease every listed host to ``incident_id`` (generator).

        Blocks until *all* of them are free (or already ours).  Returns
        the sorted host list.
        """
        wanted = frozenset(hosts)
        if not wanted:
            return []
        claim = _SpareClaim(
            incident_id=incident_id,
            hosts=wanted,
            blast_radius=blast_radius,
            seq=next(self._seq),
            event=Event(self.env),
        )
        self._waiting.append(claim)
        self._grant()
        yield claim.event
        return sorted(wanted)

    def release(self, incident_id: int) -> List[str]:
        """Drop every lease held by ``incident_id``; wakes waiting claims."""
        freed = self.held_by(incident_id)
        for host in freed:
            del self.leases[host]
        if freed:
            self.cluster.trace(
                "arbiter", "released", incident=incident_id, hosts=freed,
            )
            self._grant()
        return freed

    # -- internal ------------------------------------------------------------------

    def _grant(self) -> None:
        """Grant every satisfiable waiting claim, biggest blast radius first.

        A claim is satisfiable when each wanted host is unleased or
        already leased to the same incident — all-or-nothing, so partial
        holds never exist.  Smaller claims over *disjoint* hosts are
        granted in the same pass (no head-of-line blocking on capacity
        they don't contend for).
        """
        self._waiting.sort(key=lambda c: (-c.blast_radius, c.seq))
        granted: List[_SpareClaim] = []
        for claim in self._waiting:
            blockers = {
                host
                for host in claim.hosts
                if self.leases.get(host, claim.incident_id) != claim.incident_id
            }
            if blockers:
                continue
            for host in claim.hosts:
                holder = self.leases.get(host)
                if holder is not None and holder != claim.incident_id:
                    # Unreachable by construction; audited, not assumed.
                    self.double_leases.append((host, holder, claim.incident_id))
                self.leases[host] = claim.incident_id
            granted.append(claim)
            self.grants.append(
                (self.env.now, claim.incident_id, sorted(claim.hosts))
            )
            self.cluster.trace(
                "arbiter", "granted", incident=claim.incident_id,
                hosts=sorted(claim.hosts), blast_radius=claim.blast_radius,
            )
        for claim in granted:
            self._waiting.remove(claim)
            if not claim.event.triggered:
                claim.event.succeed(sorted(claim.hosts))
