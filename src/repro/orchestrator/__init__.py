"""Fleet orchestration: concurrent multi-job Ninja migrations.

The :mod:`repro.orchestrator` package is the fleet-level control plane
above the single-job :class:`~repro.core.scheduler.CloudScheduler`:

* :mod:`~repro.orchestrator.state` — global truth (jobs, reservations,
  in-flight migrations); prevents double-booking host RAM or HCAs;
* :mod:`~repro.orchestrator.placement` — the shared, reservation-aware
  placement engine (also used by the cloud scheduler);
* :mod:`~repro.orchestrator.planner` — bandwidth-aware wave sequencing
  and the destination-swap post-pass;
* :mod:`~repro.orchestrator.admission` — priority queue, per-tenant
  concurrency limits, backpressure (defer, never drop);
* :mod:`~repro.orchestrator.executor` — the
  :class:`~repro.orchestrator.executor.FleetOrchestrator` running
  admitted plans through the transactional Ninja sequence.

:mod:`~repro.orchestrator.scenario` (the canned fleet experiment behind
``repro fleet`` and the throughput benchmark) is intentionally *not*
imported here — import it explicitly.
"""

from repro.orchestrator.admission import (
    ABORTED,
    COMPLETED,
    FAILED,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    AdmissionController,
    AdmissionStats,
    MigrationRequest,
)
from repro.orchestrator.executor import FleetConfig, FleetOrchestrator
from repro.orchestrator.placement import PlacementEngine
from repro.orchestrator.planner import (
    MIN_ESTIMATE_BYTES,
    PlannedMigration,
    WavePlanner,
    estimate_entry_bytes,
    migration_links,
)
from repro.orchestrator.state import FleetJob, FleetStateStore, Reservation

__all__ = [
    "ABORTED",
    "COMPLETED",
    "FAILED",
    "MIN_ESTIMATE_BYTES",
    "PENDING",
    "RUNNING",
    "TERMINAL_STATES",
    "AdmissionController",
    "AdmissionStats",
    "FleetConfig",
    "FleetJob",
    "FleetOrchestrator",
    "FleetStateStore",
    "MigrationRequest",
    "PlacementEngine",
    "PlannedMigration",
    "Reservation",
    "WavePlanner",
    "estimate_entry_bytes",
    "migration_links",
]
