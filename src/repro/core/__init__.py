"""Ninja migration: the paper's contribution.

:class:`~repro.core.ninja.NinjaMigration` orchestrates an
interconnect-transparent migration of multiple co-located VMs:
cloud-scheduler trigger → CRCP quiesce → SymVirt park → device detach →
live migration → device attach → resume → link-up confirm → BTL
reconstruction — with the phase timeline accounting that reproduces the
paper's overhead breakdowns (hotplug / migration / link-up).
"""

from repro.core.checkpointing import CheckpointResult, ProactiveCheckpoint
from repro.core.fault_tolerance import (
    FaultToleranceManager,
    Health,
    HealthMonitor,
)
from repro.core.metrics import IterationSample, IterationSeries, OverheadBreakdown
from repro.core.ninja import NinjaMigration, NinjaResult
from repro.core.phases import PhaseTimeline
from repro.core.plan import MigrationPlan, PlanEntry
from repro.core.power import PowerAwarePlacer, PowerMeter, PowerSpec
from repro.core.scheduler import CloudScheduler, TriggerEvent

__all__ = [
    "CheckpointResult",
    "CloudScheduler",
    "FaultToleranceManager",
    "Health",
    "HealthMonitor",
    "PowerAwarePlacer",
    "PowerMeter",
    "PowerSpec",
    "ProactiveCheckpoint",
    "IterationSample",
    "IterationSeries",
    "MigrationPlan",
    "NinjaMigration",
    "NinjaResult",
    "OverheadBreakdown",
    "PhaseTimeline",
    "PlanEntry",
    "TriggerEvent",
]
