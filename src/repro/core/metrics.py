"""Result metrics: overhead breakdowns and per-iteration series.

:class:`OverheadBreakdown` carries the stacked-bar quantities of
Figures 6/7 and the hotplug/link-up columns of Table II;
:class:`IterationSeries` carries the per-step elapsed times of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.phases import PhaseTimeline


@dataclass
class OverheadBreakdown:
    """Ninja migration overhead, decomposed as the paper reports it."""

    coordination_s: float = 0.0
    detach_s: float = 0.0
    migration_s: float = 0.0
    attach_s: float = 0.0
    confirm_s: float = 0.0
    linkup_s: float = 0.0

    @property
    def hotplug_s(self) -> float:
        """The paper's "hotplug" = detach + re-attach + confirm."""
        return self.detach_s + self.attach_s + self.confirm_s

    @property
    def total_s(self) -> float:
        return (
            self.coordination_s
            + self.detach_s
            + self.migration_s
            + self.attach_s
            + self.confirm_s
            + self.linkup_s
        )

    @classmethod
    def from_timeline(cls, timeline: PhaseTimeline) -> "OverheadBreakdown":
        return cls(
            coordination_s=timeline.total("coordination"),
            detach_s=timeline.total("detach"),
            migration_s=timeline.total("migration"),
            attach_s=timeline.total("attach"),
            confirm_s=timeline.total("confirm"),
            linkup_s=timeline.total("linkup"),
        )

    def as_row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "coordination": round(self.coordination_s, 3),
            "hotplug": round(self.hotplug_s, 3),
            "migration": round(self.migration_s, 3),
            "linkup": round(self.linkup_s, 3),
            "total": round(self.total_s, 3),
        }

    def __str__(self) -> str:
        return (
            f"hotplug={self.hotplug_s:.2f}s migration={self.migration_s:.2f}s "
            f"linkup={self.linkup_s:.2f}s (total {self.total_s:.2f}s)"
        )


@dataclass
class IterationSample:
    """One iteration of a stepped workload (Figure 8's bars)."""

    step: int
    elapsed_s: float
    #: Overhead attributable to a Ninja migration inside this step
    #: (the dark cap of the paper's bars); 0 for normal steps.
    overhead_s: float = 0.0
    #: Label of the phase the cluster is in ("4 hosts (IB)", …).
    phase: str = ""

    @property
    def application_s(self) -> float:
        return self.elapsed_s - self.overhead_s


@dataclass
class IterationSeries:
    """A full run of stepped iterations."""

    label: str = ""
    samples: List[IterationSample] = field(default_factory=list)

    def add(self, sample: IterationSample) -> None:
        self.samples.append(sample)

    def steps(self) -> List[int]:
        return [s.step for s in self.samples]

    def elapsed(self) -> List[float]:
        return [s.elapsed_s for s in self.samples]

    def migration_steps(self) -> List[int]:
        return [s.step for s in self.samples if s.overhead_s > 0]

    def phase_means(self) -> dict:
        """Mean *application* time per phase label (excludes overhead)."""
        sums: dict = {}
        counts: dict = {}
        for sample in self.samples:
            if sample.overhead_s > 0:
                continue  # migration steps skew the mean
            sums[sample.phase] = sums.get(sample.phase, 0.0) + sample.application_s
            counts[sample.phase] = counts.get(sample.phase, 0) + 1
        return {k: sums[k] / counts[k] for k in sums}

    def phase_minimums(self) -> dict:
        """Fastest iteration per phase — the steady-state time, robust to
        un-annotated migration spikes (the paper also reports best-of-N)."""
        best: dict = {}
        for sample in self.samples:
            current = best.get(sample.phase)
            if current is None or sample.elapsed_s < current:
                best[sample.phase] = sample.elapsed_s
        return best

    def render(self) -> str:
        lines = [f"# {self.label}", f"{'step':>4}  {'elapsed':>9}  {'overhead':>9}  phase"]
        for s in self.samples:
            lines.append(
                f"{s.step:>4}  {s.elapsed_s:>8.2f}s  {s.overhead_s:>8.2f}s  {s.phase}"
            )
        return "\n".join(lines)
