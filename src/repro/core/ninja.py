"""The Ninja migration orchestrator.

Executes the full interconnect-transparent migration sequence of
Figures 4/5 against a running MPI job:

1. **coordination** — the cloud scheduler's trigger reaches every rank;
   CRCP quiesces traffic; SymVirt coordinators park the VMs (round A);
2. **detach** — agents ``device_del`` the VMM-bypass HCAs and drive the
   ACPI eject to completion;
3. signal / re-park (round B, instantaneous — the coordinators' continue
   callback waits immediately);
4. **migration** — QEMU precopy of every VM in parallel (single pass:
   the guests are parked, nothing dirties memory);
5. **attach** — agents ``device_add`` the destination HCAs where the plan
   says so, plus the guest-side **confirm** round;
6. signal — guests resume; coordinators confirm **link-up** (~30 s when
   an IB device was attached), then the MPI runtime reconstructs BTLs and
   transport switches per exclusivity.

Returns a :class:`NinjaResult` whose breakdown matches the stacked bars
of Figures 6–8 and the columns of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.metrics import OverheadBreakdown
from repro.core.phases import PhaseTimeline
from repro.core.plan import MigrationPlan
from repro.errors import SymVirtError
from repro.symvirt.controller import Controller

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.mpi.runtime import MpiJob
    from repro.vmm.migration import MigrationStats


@dataclass
class NinjaResult:
    """Outcome of one Ninja migration sequence."""

    plan: MigrationPlan
    breakdown: OverheadBreakdown
    timeline: PhaseTimeline
    migration_stats: Dict[str, "MigrationStats"] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def total_s(self) -> float:
        return self.finished_at - self.started_at


class NinjaMigration:
    """Orchestrates Ninja migrations on one cluster."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.env = cluster.env
        #: Completed sequences (most recent last).
        self.history: list[NinjaResult] = []

    def execute(self, job: "MpiJob", plan: MigrationPlan, request_checkpoint: bool = True):
        """Run the sequence (generator — drive from a simulation process).

        ``request_checkpoint=False`` lets callers that already delivered
        the trigger (e.g. a cloud-scheduler event process) skip step 0.
        """
        env = self.env
        plan.validate()
        timeline = PhaseTimeline()
        t0 = env.now
        ctl = Controller(self.cluster, plan.qemus)

        # Migration noise dilates hotplug primitives on real moves (Fig. 6).
        noise = (
            self.cluster.calibration.migration_noise_factor
            if plan.is_node_to_node
            else 1.0
        )
        for qemu in plan.qemus:
            qemu.hotplug.noise_factor = noise

        try:
            # -- 1. coordination: trigger + quiesce + park (round A) -------
            timeline.begin("coordination", env.now)
            if request_checkpoint:
                job.request_checkpoint()
            yield from ctl.wait_all()
            timeline.end("coordination", env.now)

            # -- 2. detach ---------------------------------------------------
            timeline.begin("detach", env.now)
            yield from ctl.device_detach(plan.detach_tag)
            timeline.end("detach", env.now)

            # -- 3. round A → round B ----------------------------------------
            yield from ctl.signal()
            yield from ctl.wait_all()

            # -- 4. migration -------------------------------------------------
            timeline.begin("migration", env.now)
            stats = yield from ctl.migration(
                plan.src_hostlist, plan.dst_hostlist, mapping=plan.mapping
            )
            timeline.end("migration", env.now)

            # -- 5. attach + confirm ------------------------------------------
            timeline.begin("attach", env.now)
            attach_agents = [
                agent
                for agent, entry in zip(ctl.agents, plan.entries)
                if entry.attach_ib
            ]
            if attach_agents:
                barrier = ctl._parallel(
                    agent.device_attach(
                        host=entry.attach_bdf, tag=plan.detach_tag
                    )
                    for agent, entry in zip(ctl.agents, plan.entries)
                    if entry.attach_ib
                )
                yield barrier
            timeline.end("attach", env.now)

            timeline.begin("confirm", env.now)
            yield ctl._parallel(
                agent.qemu.hotplug.confirm() for agent in ctl.agents
            )
            timeline.end("confirm", env.now)

            # Collect link-up events before waking the guests.
            linkup_events = []
            for agent, entry in zip(ctl.agents, plan.entries):
                if entry.attach_ib:
                    assignment = agent.qemu.assignments.get(plan.detach_tag)
                    if assignment is None or assignment.function.port is None:
                        raise SymVirtError(
                            f"{agent.qemu.vm.name}: attach left no port to confirm"
                        )
                    linkup_events.append(assignment.function.port.wait_active())

            # -- 6. resume + link-up -------------------------------------------
            yield from ctl.signal()
            timeline.begin("linkup", env.now)
            if linkup_events:
                yield env.all_of(linkup_events)
            timeline.end("linkup", env.now)

            yield from ctl.quit()
        finally:
            for qemu in plan.qemus:
                qemu.hotplug.noise_factor = 1.0

        result = NinjaResult(
            plan=plan,
            breakdown=OverheadBreakdown.from_timeline(timeline),
            timeline=timeline,
            migration_stats=stats,
            started_at=t0,
            finished_at=env.now,
        )
        self.history.append(result)
        self.cluster.trace(
            "ninja",
            "completed",
            label=plan.label,
            wallclock=round(result.total_s, 3),
            **result.breakdown.as_row(),
        )
        return result

    # -- plan builders (thin wrappers; the cloud scheduler adds policy) ------------

    def fallback_plan(self, qemus, dst_hosts, label: str = "fallback") -> MigrationPlan:
        """IB cluster → Ethernet cluster (detach, no re-attach)."""
        return MigrationPlan.build(
            self.cluster, qemus, list(dst_hosts), attach_ib=False, label=label
        )

    def recovery_plan(self, qemus, dst_hosts, label: str = "recovery") -> MigrationPlan:
        """Ethernet cluster → IB cluster (re-attach on arrival)."""
        return MigrationPlan.build(
            self.cluster, qemus, list(dst_hosts), attach_ib=True, label=label
        )

    def self_migration_plan(
        self, qemus, attach_ib: bool, label: str = "self"
    ) -> MigrationPlan:
        """Migrate VMs onto their own hosts (the Table II micro benchmark)."""
        return MigrationPlan.build(
            self.cluster,
            qemus,
            [q.node.name for q in qemus],
            attach_ib=attach_ib,
            label=label,
        )
