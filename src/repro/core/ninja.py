"""The Ninja migration orchestrator (transactional).

Executes the full interconnect-transparent migration sequence of
Figures 4/5 against a running MPI job:

1. **coordination** — the cloud scheduler's trigger reaches every rank;
   CRCP quiesces traffic; SymVirt coordinators park the VMs (round A);
2. **detach** — agents ``device_del`` the VMM-bypass HCAs and drive the
   ACPI eject to completion;
3. signal / re-park (round B, instantaneous — the coordinators' continue
   callback waits immediately);
4. **migration** — QEMU precopy of every VM in parallel (single pass:
   the guests are parked, nothing dirties memory);
5. **attach** — agents ``device_add`` the destination HCAs where the plan
   says so, plus the guest-side **confirm** round;
6. signal — guests resume; coordinators confirm **link-up** (~30 s when
   an IB device was attached), then the MPI runtime reconstructs BTLs and
   transport switches per exclusivity.

Returns a :class:`NinjaResult` whose breakdown matches the stacked bars
of Figures 6–8 and the columns of Table II.

Failure semantics
-----------------

The sequence is a *transaction* over guest-visible state.  Before each
risky phase the orchestrator pushes a compensation onto an undo stack;
a mid-phase failure (``SymVirtError``/``MigrationError``/``NetworkError``
/``QmpError``/:class:`~repro.errors.PhaseTimeoutError`) triggers
**rollback** — the stack unwinds in LIFO order:

``detach-stray``
    eject HCAs this sequence attached on VMs away from their origin;
``migrate-back``
    precopy every relocated VM back to its origin host;
``reattach-origin``
    re-attach the original HCA on every VM that started with one;
``resume-guests``
    release whichever of the two SymVirt wait rounds are still owed so
    every coordinator returns and the job keeps running.

Transient errors (QMP RTT loss, migration-socket resets — anything in
``TRANSIENT_ERRORS`` except :class:`~repro.errors.MigrationBlockedError`)
are first absorbed by bounded retry with exponential backoff
(:class:`~repro.core.faults.RetryPolicy`); rollback only starts once the
attempts are exhausted or a non-transient error fires.

The **commit point** is the second ``signal`` (guests resumed on their
destinations).  A link-up failure after that cannot be rolled back
without re-parking the job, so the sequence *degrades* instead: HCAs
whose port never trained are ejected so the guests fall back to the
Ethernet path, and the result reports ``status="aborted"`` with
``committed=True``.

Faults for testing are injected through the cluster-wide
:class:`~repro.core.faults.FaultInjector` at sites ``ninja.<phase>``
(plus the lower-level ``qmp.*`` / ``hotplug.*`` / ``migration.stream``
sites the phases drive).

Crash semantics
---------------

Every sequence writes a **write-ahead journal**
(:class:`~repro.recovery.journal.MigrationJournal`): an ``intent`` record
before each phase, a ``commit`` record after it, compensation-stack and
terminal records in between.  ``controller.crash.<point>`` fault sites sit
at each boundary *before* the corresponding record is written — an armed
crash raises :class:`~repro.errors.ControllerCrashError` (deliberately
not a ``ReproError``, so neither retry nor rollback runs: a dead
controller does nothing) and sets :attr:`NinjaMigration.crashed`, which
kills every sibling sequence of the same controller at its next
boundary.  The journal plus observed VMM/agent state is exactly what
:class:`~repro.recovery.recovery.RecoveryManager` needs to roll the
sequence forward (past the commit point) or back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.faults import RetryPolicy
from repro.core.metrics import OverheadBreakdown
from repro.core.phases import PhaseTimeline
from repro.core.plan import MigrationPlan
from repro.errors import (
    ControllerCrashError,
    MigrationAbortedError,
    MigrationBlockedError,
    MigrationError,
    NetworkError,
    PhaseTimeoutError,
    QmpError,
    ReproError,
    SymVirtError,
)
from repro.network.fabric import PortState
from repro.recovery.journal import MigrationJournal
from repro.symvirt.controller import Controller

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.mpi.runtime import MpiJob
    from repro.vmm.migration import MigrationStats
    from repro.vmm.policy import MigrationPolicy

#: The six phases of one sequence, in execution order.
PHASES = (
    "coordination",
    "detach",
    "migration",
    "attach",
    "confirm",
    "linkup",
)

#: Error classes the retry loop treats as transient.  A
#: :class:`~repro.errors.MigrationBlockedError` is excluded even though it
#: is a ``MigrationError`` — a blocker is a planning bug, not socket
#: weather, and retrying it can never succeed.
TRANSIENT_ERRORS = (QmpError, MigrationError, NetworkError)


@dataclass
class NinjaResult:
    """Outcome of one Ninja migration sequence."""

    plan: MigrationPlan
    breakdown: OverheadBreakdown
    timeline: PhaseTimeline
    migration_stats: Dict[str, "MigrationStats"] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0
    #: ``"completed"`` or ``"aborted"``.
    status: str = "completed"
    #: Phase whose failure aborted the sequence (``None`` on success).
    failed_phase: Optional[str] = None
    #: String form of the error that aborted the sequence.
    error: str = ""
    #: Per-phase retry counts (phases absent from the dict never retried).
    retries: Dict[str, int] = field(default_factory=dict)
    #: Compensation/degrade actions executed, in execution order.
    rollback_actions: List[str] = field(default_factory=list)
    #: True once the guests were resumed at their destinations — an abort
    #: after this point degraded (VMs stay put, dead HCAs ejected) rather
    #: than rolled back.
    committed: bool = False
    #: Journal id of this sequence (``label@N``).
    migration_id: str = ""

    @property
    def aborted(self) -> bool:
        return self.status == "aborted"

    @property
    def total_s(self) -> float:
        return self.finished_at - self.started_at


class NinjaMigration:
    """Orchestrates Ninja migrations on one cluster.

    Parameters
    ----------
    retry_policy:
        Bounded retry with exponential backoff applied to transient
        per-phase failures.  Defaults to 3 attempts, 0.5 s base delay.
    phase_timeout_s:
        Optional per-phase wall-clock budgets (phase name → simulated
        seconds).  A phase that overruns is interrupted and aborts the
        sequence with :class:`~repro.errors.PhaseTimeoutError` (timeouts
        are deliberately non-retryable: a stuck phase left work in an
        unknown state, so the only safe continuation is rollback).
    """

    def __init__(
        self,
        cluster: "Cluster",
        retry_policy: Optional[RetryPolicy] = None,
        phase_timeout_s: Optional[Dict[str, float]] = None,
        journal: Optional[MigrationJournal] = None,
        migration_policy: Optional["MigrationPolicy"] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.phase_timeout_s: Dict[str, float] = dict(phase_timeout_s or {})
        #: Degraded-path escalation knobs handed to every QEMU migration
        #: this controller starts (None = plain precopy).
        self.migration_policy = migration_policy
        #: Write-ahead journal of every sequence this controller runs.
        self.journal = (
            journal if journal is not None else MigrationJournal()
        ).bind(cluster.env)
        #: Set once a ``controller.crash.*`` fault fires; every sibling
        #: sequence of this controller dies at its next phase boundary.
        self.crashed = False
        #: Poll interval while waiting for in-flight work to settle.
        self.settle_poll_s = 0.05
        #: Upper bound on settling before rollback gives up (a migration
        #: stream that never resolves is indistinguishable from a crashed
        #: QEMU; surfacing MigrationAbortedError beats deadlocking).
        self.settle_timeout_s = 3600.0
        #: Completed sequences (most recent last).
        self.history: list[NinjaResult] = []

    # -- helpers -------------------------------------------------------------------

    def _guard(self, label: str, point: str) -> None:
        """Controller-liveness checkpoint at a journal boundary.

        Placed *before* the boundary's journal record, so a controller
        that dies here never writes the record — the journal can lag the
        world (an action landed but its record did not) but never lead
        it, which is the invariant recovery's reconciliation relies on.
        """
        if self.crashed:
            raise ControllerCrashError(f"controller dead at {point} ({label})")
        faults = self.cluster.faults
        if not faults.specs:
            return
        try:
            faults.maybe_fail(f"controller.crash.{point}")
        except ControllerCrashError:
            self.crashed = True
            self.cluster.trace("ninja", "controller_crash", label=label, point=point)
            raise
        except ReproError as err:
            # Any armed error at a crash site means "the controller died
            # here" — normalise it so nothing downstream retries it.
            self.crashed = True
            self.cluster.trace("ninja", "controller_crash", label=label, point=point)
            raise ControllerCrashError(
                f"controller crashed at {point} ({label}): {err}"
            ) from err

    def _settle(self, qemus):
        """Wait until no controlled VM has an in-flight migration or
        hotplug primitive (generator).

        A failed parallel phase fails *fast* — sibling operations are
        still running when the barrier collapses.  Retrying or rolling
        back before they land would race their state transitions.
        """
        deadline = self.env.now + self.settle_timeout_s

        def busy() -> bool:
            for qemu in qemus:
                if qemu.hotplug.active_ops:
                    return True
                job = qemu.current_migration
                if job is not None and job.stats.in_flight:
                    return True
            return False

        while busy():
            if self.env.now >= deadline:
                raise PhaseTimeoutError("settle", self.settle_timeout_s)
            yield self.env.timeout(self.settle_poll_s)

    def _with_timeout(self, phase: str, body):
        """Drive ``body`` (a generator), bounded by the phase's budget."""
        budget = self.phase_timeout_s.get(phase)
        if budget is None:
            yield from body
            return
        proc = self.env.process(body, name=f"ninja.{phase}")
        clock = self.env.timeout(budget)
        yield self.env.any_of([proc, clock])  # re-raises if the body failed
        if proc.is_alive:
            proc.interrupt(f"phase {phase!r} timed out")
            raise PhaseTimeoutError(phase, budget)

    # -- the sequence -----------------------------------------------------------------

    def execute(self, job: "MpiJob", plan: MigrationPlan, request_checkpoint: bool = True):
        """Run the sequence (generator — drive from a simulation process).

        ``request_checkpoint=False`` lets callers that already delivered
        the trigger (e.g. a cloud-scheduler event process) skip step 0.

        Mid-phase failures roll the transaction back (or degrade it, past
        the commit point) and return an *aborted* :class:`NinjaResult`
        rather than raising; :class:`~repro.errors.MigrationAbortedError`
        is raised only when the rollback itself fails — the one state the
        orchestrator cannot make safe on its own.
        """
        env = self.env
        plan.validate()
        timeline = PhaseTimeline()
        t0 = env.now
        ctl = Controller(self.cluster, plan.qemus)
        faults = self.cluster.faults
        tag = plan.detach_tag
        policy = self.retry_policy

        #: Per-VM migration stats; bound before any phase so an abort in
        #: an early phase still builds a result (regression: ``stats``
        #: used to be assigned inside the migration phase only).
        stats: Dict[str, "MigrationStats"] = {}
        retries: Dict[str, int] = {}
        #: Phase currently executing (for abort attribution).
        current_phase: List[Optional[str]] = [None]
        #: SymVirt rounds already released via ``signal`` (of the two owed).
        rounds_released = [0]
        #: VMs that crossed the postcopy switchover — per-VM points of no
        #: return (their only runnable image is on the destination).
        postcopy_switched: set[str] = set()
        #: LIFO compensation stack: (action name, generator factory).
        compensations: List[tuple] = []
        rollback_actions: List[str] = []
        committed = False

        # What the world looked like before the transaction started.
        origin = {q.vm.name: q.node.name for q in plan.qemus}
        had_attached = {a.qemu.vm.name: a.has_attached(tag) for a in ctl.agents}

        journal = self.journal
        mid = journal.begin_sequence(
            plan, origin=origin, had_attached=had_attached,
            request_checkpoint=request_checkpoint,
        )

        # Migration noise dilates hotplug primitives on real moves (Fig. 6).
        noise = (
            self.cluster.calibration.migration_noise_factor
            if plan.is_node_to_node
            else 1.0
        )
        for qemu in plan.qemus:
            qemu.hotplug.noise_factor = noise

        # -- phase bodies (closures over the transaction state) ------------------

        def coordination_body():
            yield from faults.perturb("ninja.coordination")
            yield from ctl.wait_all()

        def detach_body():
            # Idempotent under retry: device_detach skips agents that
            # already lost the device on an earlier attempt.
            yield from faults.perturb("ninja.detach")
            yield from ctl.device_detach(tag)

        def migration_body():
            yield from faults.perturb("ninja.migration")
            # Skip VMs whose migration already completed on an earlier
            # attempt — ``stats`` accumulates even across failed barriers.
            pending = {
                name: dst
                for name, dst in plan.mapping.items()
                if name not in stats or stats[name].status != "completed"
            }
            if pending:
                # Async start + explicit barrier so a controller crash
                # can land *mid-precopy*: the QEMU streams are their own
                # simulation processes and run to completion with the
                # controller dead — exactly the orphaned-state recovery
                # must reconcile.
                barrier = ctl.migration_async(
                    mapping=pending, results=stats, policy=self.migration_policy
                )
                self._guard(plan.label, "migration.inflight")
                yield barrier
                self.cluster.trace("symvirt", "migration", mapping=pending)
            # Postcopy switchovers are per-VM commit points: once a VM's
            # execution moved, the origin holds no runnable image and the
            # move can never be compensated.  Journal them so recovery
            # rolls these VMs *forward* even before the sequence-level
            # commit point.  The crash guard sits before the record — a
            # controller dying here leaves the switchover observable in
            # the world but absent from the journal (journal lags world),
            # and recovery's roll-back path handles the completed drain.
            switched = sorted(
                name
                for name, vm_stats in stats.items()
                if vm_stats.mode == "postcopy" and name not in postcopy_switched
            )
            if switched:
                self._guard(plan.label, "postcopy.intent")
                journal.append("postcopy-switchover", mid=mid, vms=switched)
                postcopy_switched.update(switched)
                self._guard(plan.label, "postcopy.commit")

        def attach_body():
            yield from faults.perturb("ninja.attach")
            pending = [
                (agent, entry)
                for agent, entry in zip(ctl.agents, plan.entries)
                if entry.attach_ib and not agent.has_attached(tag)
            ]
            if pending:
                yield ctl._parallel(
                    agent.device_attach(host=entry.attach_bdf, tag=tag)
                    for agent, entry in pending
                )
            # Verify every attach left a confirmable port; a bad attach
            # rolls the whole sequence back.
            for agent, entry in zip(ctl.agents, plan.entries):
                if entry.attach_ib:
                    assignment = agent.qemu.assignments.get(tag)
                    if assignment is None or assignment.function.port is None:
                        raise SymVirtError(
                            f"{agent.qemu.vm.name}: attach left no port to confirm"
                        )

        def confirm_body():
            yield from faults.perturb("ninja.confirm")
            yield ctl._parallel(agent.qemu.hotplug.confirm() for agent in ctl.agents)

        # -- compensations (run in reverse push order on rollback) ----------------

        def finish_partial_ejects() -> None:
            """Complete hotplug primitives that were interrupted mid-flight.

            A seated function with no guest driver is the signature of an
            interrupted attach (driver never probed) or detach (driver
            unbound, eject unfinished); either way the safe terminal state
            is "ejected".
            """
            for agent in ctl.agents:
                assignment = agent.qemu.assignments.get(tag)
                kernel = agent.qemu.vm.kernel
                if (
                    assignment is not None
                    and assignment.attached
                    and kernel is not None
                    and not kernel.has_driver(assignment.function)
                ):
                    assignment.unseat()
                    self.cluster.trace(
                        "ninja", "rollback_finish_eject", vm=agent.qemu.vm.name, tag=tag
                    )

        def detach_stray():
            """Eject HCAs this sequence attached on VMs away from home."""
            stray = [
                agent
                for agent in ctl.agents
                if agent.has_attached(tag)
                and agent.qemu.node.name != origin[agent.qemu.vm.name]
            ]
            if stray:
                yield ctl._parallel(agent.device_detach(tag) for agent in stray)

        def migrate_back():
            """Return every relocated VM to its origin host.

            VMs that crossed the postcopy switchover stay put: their
            journalled per-VM commit point makes the move irreversible,
            so rollback leaves them on the destination.
            """
            back = {
                agent.qemu.vm.name: origin[agent.qemu.vm.name]
                for agent in ctl.agents
                if agent.qemu.node.name != origin[agent.qemu.vm.name]
                and agent.qemu.vm.name not in postcopy_switched
            }
            if back:
                yield from ctl.migration(
                    plan.dst_hostlist, plan.src_hostlist, mapping=back
                )

        def reattach_origin():
            """Re-attach the original HCA on every VM that started with one."""
            pending = [
                agent
                for agent in ctl.agents
                if had_attached[agent.qemu.vm.name] and not agent.has_attached(tag)
            ]
            if pending:
                yield ctl._parallel(
                    agent.device_attach(host="", tag=tag) for agent in pending
                )

        def resume_guests():
            """Release whichever of the two wait rounds are still owed."""
            yield from ctl.release(2 - rounds_released[0])
            rounds_released[0] = 2

        def rollback(cause: BaseException):
            self.cluster.trace(
                "ninja",
                "rollback_begin",
                label=plan.label,
                phase=current_phase[0],
                error=str(cause),
            )
            timeline.begin("rollback", env.now)
            try:
                yield from self._settle(plan.qemus)
                finish_partial_ejects()
                while compensations:
                    name, factory = compensations.pop()
                    rollback_actions.append(name)
                    journal.append("rollback-action", mid=mid, action=name)
                    self.cluster.trace("ninja", "rollback_action", action=name)
                    yield from factory()
            finally:
                timeline.end("rollback", env.now)

        def degrade(cause: BaseException):
            """Past the commit point: keep the move, shed dead devices."""
            self.cluster.trace(
                "ninja", "degrade_begin", label=plan.label, error=str(cause)
            )
            timeline.begin("rollback", env.now)
            try:
                yield from self._settle(plan.qemus)
                finish_partial_ejects()
                dead = []
                for agent in ctl.agents:
                    if not agent.has_attached(tag):
                        continue
                    port = agent.qemu.assignments[tag].function.port
                    if port is None or port.state is not PortState.ACTIVE:
                        dead.append(agent)
                if dead:
                    rollback_actions.append("detach-dead-hca")
                    journal.append("rollback-action", mid=mid, action="detach-dead-hca")
                    yield ctl._parallel(agent.device_detach(tag) for agent in dead)
            finally:
                timeline.end("rollback", env.now)

        # -- phase runner ---------------------------------------------------------

        def run_phase(name: str, body_factory: Callable[[], object]):
            current_phase[0] = name
            timeline.begin(name, env.now)
            attempt = 0
            try:
                while True:
                    try:
                        yield from self._with_timeout(name, body_factory())
                    except MigrationBlockedError:
                        raise
                    except TRANSIENT_ERRORS as err:
                        if attempt + 1 >= policy.max_attempts:
                            raise
                        delay = policy.delay(attempt, self.cluster.rng)
                        retries[name] = retries.get(name, 0) + 1
                        self.cluster.trace(
                            "ninja",
                            "retry",
                            label=plan.label,
                            phase=name,
                            attempt=attempt + 1,
                            backoff_s=round(delay, 6),
                            error=str(err),
                        )
                        yield env.timeout(delay)
                        yield from self._settle(plan.qemus)
                        attempt += 1
                    else:
                        return
            finally:
                timeline.end(name, env.now)

        # -- drive the transaction -----------------------------------------------

        try:
            try:
                # Step 0 happens before anything is parked or detached —
                # a failed trigger needs no rollback and is re-raised.
                if request_checkpoint:
                    job.request_checkpoint()

                # -- 1. coordination: quiesce + park (round A) -----------
                compensations.append(("resume-guests", resume_guests))
                journal.append("compensation", mid=mid, action="resume-guests")
                self._guard(plan.label, "coordination.intent")
                journal.append("intent", mid=mid, phase="coordination")
                yield from run_phase("coordination", coordination_body)
                self._guard(plan.label, "coordination.commit")
                journal.append("commit", mid=mid, phase="coordination")

                # -- 2. detach -------------------------------------------
                compensations.append(("reattach-origin", reattach_origin))
                journal.append("compensation", mid=mid, action="reattach-origin")
                self._guard(plan.label, "detach.intent")
                journal.append("intent", mid=mid, phase="detach")
                yield from run_phase("detach", detach_body)
                self._guard(plan.label, "detach.commit")
                journal.append("commit", mid=mid, phase="detach")

                # -- 3. round A → round B --------------------------------
                self._guard(plan.label, "signal.intent")
                yield from ctl.signal()
                rounds_released[0] += 1
                journal.append("signal", mid=mid, round=1)
                self._guard(plan.label, "signal.commit")
                yield from ctl.wait_all()

                # -- 4. migration ----------------------------------------
                compensations.append(("migrate-back", migrate_back))
                journal.append("compensation", mid=mid, action="migrate-back")
                self._guard(plan.label, "migration.intent")
                journal.append("intent", mid=mid, phase="migration")
                yield from run_phase("migration", migration_body)
                self._guard(plan.label, "migration.commit")
                journal.append("commit", mid=mid, phase="migration")

                # -- 5. attach + confirm ---------------------------------
                compensations.append(("detach-stray", detach_stray))
                journal.append("compensation", mid=mid, action="detach-stray")
                self._guard(plan.label, "attach.intent")
                journal.append("intent", mid=mid, phase="attach")
                yield from run_phase("attach", attach_body)
                self._guard(plan.label, "attach.commit")
                journal.append("commit", mid=mid, phase="attach")
                self._guard(plan.label, "confirm.intent")
                journal.append("intent", mid=mid, phase="confirm")
                yield from run_phase("confirm", confirm_body)
                self._guard(plan.label, "confirm.commit")
                journal.append("commit", mid=mid, phase="confirm")

                # Collect link-up events before waking the guests.
                linkup_events = []
                for agent, entry in zip(ctl.agents, plan.entries):
                    if entry.attach_ib:
                        assignment = agent.qemu.assignments[tag]
                        linkup_events.append(assignment.function.port.wait_active())

                # -- 6. resume: THE COMMIT POINT -------------------------
                # No crash site sits between the second signal and its
                # commit-point record: the write closes the uncertainty
                # window by construction.  (Recovery still cross-checks
                # the observed park state, belt and braces.)
                self._guard(plan.label, "resume.intent")
                journal.append("intent", mid=mid, phase="resume")
                yield from ctl.signal()
                rounds_released[0] += 1
                committed = True
                compensations.clear()
                journal.append("commit-point", mid=mid)
                self._guard(plan.label, "commit-point.commit")

                def linkup_body():
                    yield from faults.perturb("ninja.linkup")
                    if linkup_events:
                        yield env.all_of(linkup_events)

                self._guard(plan.label, "linkup.intent")
                journal.append("intent", mid=mid, phase="linkup")
                yield from run_phase("linkup", linkup_body)
                self._guard(plan.label, "linkup.commit")
                journal.append("commit", mid=mid, phase="linkup")

                yield from ctl.quit()
            except ReproError as err:
                if current_phase[0] is None and not compensations:
                    # Failed before the transaction opened (trigger path).
                    journal.append("aborted", mid=mid, phase="trigger", error=str(err))
                    raise
                failed_phase = current_phase[0]
                self.cluster.trace(
                    "ninja",
                    "phase_failed",
                    label=plan.label,
                    phase=failed_phase,
                    error=str(err),
                    kind=type(err).__name__,
                )
                try:
                    if committed:
                        yield from degrade(err)
                    else:
                        yield from rollback(err)
                except ReproError as rollback_err:
                    # A failed rollback is not a settled outcome: VMs may
                    # be split across hosts or still parked.  The flag
                    # keeps the sequence on the recovery work list.
                    journal.append(
                        "aborted", mid=mid, phase=failed_phase or "?",
                        committed=committed, rollback_failed=True,
                        error=f"rollback failed: {rollback_err}",
                    )
                    raise MigrationAbortedError(
                        failed_phase or "?",
                        f"rollback failed: {rollback_err}",
                        cause=err,
                    ) from err
                ctl.close()
                journal.append(
                    "aborted", mid=mid, phase=failed_phase or "?",
                    committed=committed, error=str(err),
                )
                result = NinjaResult(
                    plan=plan,
                    breakdown=OverheadBreakdown.from_timeline(timeline),
                    timeline=timeline,
                    migration_stats=stats,
                    started_at=t0,
                    finished_at=env.now,
                    status="aborted",
                    failed_phase=failed_phase,
                    error=str(err),
                    retries=dict(retries),
                    rollback_actions=list(rollback_actions),
                    committed=committed,
                    migration_id=mid,
                )
                self.history.append(result)
                self.cluster.trace(
                    "ninja",
                    "aborted",
                    label=plan.label,
                    phase=failed_phase,
                    error=str(err),
                    committed=committed,
                    rollback=",".join(rollback_actions),
                    retries=sum(retries.values()),
                    wallclock=round(result.total_s, 3),
                )
                return result
        finally:
            for qemu in plan.qemus:
                qemu.hotplug.noise_factor = 1.0

        journal.append("complete", mid=mid)
        result = NinjaResult(
            plan=plan,
            breakdown=OverheadBreakdown.from_timeline(timeline),
            timeline=timeline,
            migration_stats=stats,
            started_at=t0,
            finished_at=env.now,
            retries=dict(retries),
            migration_id=mid,
        )
        self.history.append(result)
        self.cluster.trace(
            "ninja",
            "completed",
            label=plan.label,
            wallclock=round(result.total_s, 3),
            retries=sum(retries.values()),
            **result.breakdown.as_row(),
        )
        return result

    # -- plan builders (thin wrappers; the cloud scheduler adds policy) ------------

    def fallback_plan(self, qemus, dst_hosts, label: str = "fallback") -> MigrationPlan:
        """IB cluster → Ethernet cluster (detach, no re-attach)."""
        return MigrationPlan.build(
            self.cluster, qemus, list(dst_hosts), attach_ib=False, label=label
        )

    def recovery_plan(self, qemus, dst_hosts, label: str = "recovery") -> MigrationPlan:
        """Ethernet cluster → IB cluster (re-attach on arrival)."""
        return MigrationPlan.build(
            self.cluster, qemus, list(dst_hosts), attach_ib=True, label=label
        )

    def self_migration_plan(
        self, qemus, attach_ib: bool, label: str = "self"
    ) -> MigrationPlan:
        """Migrate VMs onto their own hosts (the Table II micro benchmark)."""
        return MigrationPlan.build(
            self.cluster,
            qemus,
            [q.node.name for q in qemus],
            attach_ib=attach_ib,
            label=label,
        )
