"""Deterministic fault injection and retry policy for the migration stack.

Experiments and tests need failures that happen *exactly* where and when
they are asked for — MigrOS-style connection-recovery testing is useless
if the fault fires on a different QMP command from run to run.  This
module provides:

* :class:`FaultInjector` — a registry of armed :class:`FaultSpec` entries,
  keyed by *site* name.  Instrumented call sites (the six Ninja phases,
  every QMP command, the hotplug primitives, the migration stream) call
  :meth:`FaultInjector.perturb` / :meth:`FaultInjector.maybe_fail`; an
  armed spec matching that site raises its exception on the Nth call at
  or after a simulated time, or parks the caller forever (``hang=True``,
  for exercising per-phase timeouts).
* :class:`RetryPolicy` — bounded retry with exponential backoff whose
  delays are exact functions of the attempt index (and, when jitter is
  enabled, of the seeded :class:`~repro.sim.rng.RngRegistry` stream), so
  tests can assert the full simulated-clock delay sequence.

Site naming convention (all instrumented sites in the tree)::

    ninja.coordination  ninja.detach  ninja.migration
    ninja.attach        ninja.confirm ninja.linkup      (per phase attempt)
    qmp.<command>                                        (per QMP command)
    hotplug.attach  hotplug.detach  hotplug.confirm      (per primitive)
    migration.stream                                     (per precopy run)
    network.chaos                                        (per degradation event;
                                                          see repro.network.degradation)
    controller.crash.<phase>.{intent,commit}             (controller death at a
    controller.crash.signal.{intent,commit}               journal boundary; see
    controller.crash.migration.inflight                   repro.recovery)
    controller.crash.resume.intent
    controller.crash.commit-point.commit
    controller.crash.postcopy.{intent,commit}            (around the journal's
                                                          postcopy-switchover record)

Sites support ``fnmatch`` patterns (``qmp.*`` arms every QMP command).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from repro.errors import FaultInjectionError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment
    from repro.sim.rng import RngRegistry

#: An armed error: an exception instance, an exception class, or a factory
#: called with the site name.
ErrorSpec = Union[BaseException, type, Callable[[str], BaseException]]


@dataclass
class FaultSpec:
    """One armed fault: *where*, *when*, and *what* to inject."""

    site: str
    error: Optional[ErrorSpec] = None
    #: Fire on the Nth matching call (1-based) ...
    nth: int = 1
    #: ... at or after this simulated time (``None`` = any time).
    at_time: Optional[float] = None
    #: How many consecutive calls fire once triggered (1 = transient).
    times: int = 1
    #: Instead of raising, block the caller on a never-firing event
    #: (drives the per-phase timeout path).
    hang: bool = False
    armed: bool = True
    #: Matching calls observed while armed (gates the ``nth`` trigger).
    seen: int = 0
    #: Times this spec actually fired.
    fired: int = 0

    def matches(self, site: str) -> bool:
        return self.site == site or fnmatchcase(site, self.site)

    def exhausted(self) -> bool:
        return self.fired >= self.times

    def make_error(self, site: str) -> BaseException:
        err = self.error
        if err is None:
            return FaultInjectionError(f"injected fault at {site!r}")
        if isinstance(err, BaseException):
            return err
        if isinstance(err, type):
            return err(f"injected fault at {site!r}")
        return err(site)


@dataclass
class FiredFault:
    """Audit record of one injection."""

    time: float
    site: str
    spec: FaultSpec
    call_index: int


class FaultInjector:
    """Deterministic fault registry shared by one cluster.

    The injector is inert (and nearly free) until :meth:`arm` is called —
    instrumented sites bail out on an empty spec list, so production runs
    pay one attribute load and one truthiness check per site.
    """

    def __init__(self, env: Optional["Environment"] = None) -> None:
        self.env = env
        self.specs: List[FaultSpec] = []
        #: Total calls per site (armed or not, once any spec exists).
        self._calls: Dict[str, int] = {}
        #: Audit trail of every injection, in firing order.
        self.fired: List[FiredFault] = []

    # -- wiring ---------------------------------------------------------------

    def bind(self, env: "Environment") -> "FaultInjector":
        """Attach the simulation clock (the cluster does this at build)."""
        self.env = env
        return self

    @property
    def now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    # -- arming ---------------------------------------------------------------

    def arm(
        self,
        site: str,
        error: Optional[ErrorSpec] = None,
        nth: int = 1,
        at_time: Optional[float] = None,
        times: int = 1,
        hang: bool = False,
    ) -> FaultSpec:
        """Arm a fault at ``site``; returns the spec (pass to :meth:`disarm`)."""
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        spec = FaultSpec(
            site=site, error=error, nth=nth, at_time=at_time, times=times, hang=hang
        )
        self.specs.append(spec)
        return spec

    def disarm(self, spec_or_site: Union[FaultSpec, str]) -> int:
        """Disarm one spec, or every spec whose site pattern equals the string.

        Returns the number of specs disarmed.
        """
        if isinstance(spec_or_site, FaultSpec):
            targets = [s for s in self.specs if s is spec_or_site]
        else:
            targets = [s for s in self.specs if s.site == spec_or_site]
        for spec in targets:
            spec.armed = False
            self.specs.remove(spec)
        return len(targets)

    def clear(self) -> None:
        """Disarm everything and forget call counters + audit trail."""
        for spec in self.specs:
            spec.armed = False
        self.specs.clear()
        self._calls.clear()
        self.fired.clear()

    # -- introspection --------------------------------------------------------

    def calls(self, site: str) -> int:
        """Calls observed at ``site`` since the first spec was armed."""
        return self._calls.get(site, 0)

    @property
    def active(self) -> bool:
        return bool(self.specs)

    # -- injection ------------------------------------------------------------

    def _select(self, site: str) -> Optional[FaultSpec]:
        """Count the call and return the spec that should fire, if any."""
        self._calls[site] = self._calls.get(site, 0) + 1
        for spec in self.specs:
            if not spec.armed or spec.exhausted() or not spec.matches(site):
                continue
            if spec.at_time is not None and self.now < spec.at_time:
                continue
            spec.seen += 1
            if spec.seen < spec.nth:
                continue
            spec.fired += 1
            self.fired.append(
                FiredFault(time=self.now, site=site, spec=spec, call_index=self._calls[site])
            )
            return spec
        return None

    def maybe_fail(self, site: str) -> None:
        """Synchronous site check: raise if an armed spec fires.

        ``hang`` specs cannot be honoured synchronously and raise a
        :class:`FaultInjectionError` explaining so — use a generator site
        (:meth:`perturb`) for hangs.
        """
        if not self.specs:
            return
        spec = self._select(site)
        if spec is None:
            return
        if spec.hang:
            raise FaultInjectionError(
                f"hang fault armed at synchronous site {site!r} — only "
                f"generator sites (perturb) can hang"
            )
        raise spec.make_error(site)

    def perturb(self, site: str):
        """Generator site check — drive with ``yield from``.

        Raises the armed error, blocks forever (``hang=True``), or falls
        straight through when nothing fires.
        """
        if not self.specs:
            return
        spec = self._select(site)
        if spec is None:
            return
        if spec.hang:
            if self.env is None:
                raise FaultInjectionError(f"cannot hang at {site!r}: injector has no env")
            yield Event(self.env)  # never triggered: parks the caller
            raise AssertionError("unreachable: hang event fired")  # pragma: no cover
        raise spec.make_error(site)


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff (deterministic by default).

    ``delay(attempt)`` for attempt = 0, 1, 2 … is
    ``base_delay_s * factor**attempt``, optionally jittered through the
    seeded ``ninja.backoff`` RNG stream — both fully reproducible.
    """

    #: Total attempts, including the first (3 = one try + two retries).
    max_attempts: int = 3
    base_delay_s: float = 0.5
    factor: float = 2.0
    #: Relative jitter applied via :meth:`RngRegistry.jitter` (0 = exact).
    jitter_rel: float = 0.0
    #: RNG stream name used when jitter is enabled.
    stream: str = "ninja.backoff"

    def delay(self, attempt: int, rng: Optional["RngRegistry"] = None) -> float:
        """Backoff before retry number ``attempt + 1`` (attempt is 0-based)."""
        base = self.base_delay_s * self.factor**attempt
        if self.jitter_rel > 0.0 and rng is not None:
            return rng.jitter(self.stream, base, self.jitter_rel)
        return float(base)

    def delays(self, rng: Optional["RngRegistry"] = None) -> List[float]:
        """The full backoff sequence this policy can produce."""
        return [self.delay(i, rng) for i in range(self.max_attempts - 1)]
