"""Reactive fault tolerance: health monitoring driving automatic Ninja.

Section II-A's non-stop-maintenance use case pairs Ninja migration with
"proactive and reactive fault tolerant systems": *proactive* handling
(evacuate ahead of a predicted failure) and *reactive* handling (restore
from checkpoints after an unpredicted one).  This module supplies the
policy loop:

* :class:`HealthMonitor` — a per-node health feed; experiments inject
  warnings ("ECC errors rising", "thermal trip predicted") and failures;
* :class:`FaultToleranceManager` — subscribes to the feed and reacts:
  a *warning* triggers an automatic fallback of the affected node's VMs
  to healthy hosts (Ninja — no process restarts); a *failure* of a node
  holding VMs triggers restore-from-latest-checkpoint on healthy hosts
  when a :class:`~repro.core.checkpointing.ProactiveCheckpoint` schedule
  is attached.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.core.checkpointing import CheckpointResult, ProactiveCheckpoint
from repro.core.plan import MigrationPlan
from repro.core.scheduler import CloudScheduler
from repro.errors import MigrationAbortedError, SchedulerError
from repro.sim.events import Event
from repro.vmm.vm import RunState

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.mpi.runtime import MpiJob
    from repro.vmm.qemu import QemuProcess


class Health(enum.Enum):
    """Node health states."""

    OK = "ok"
    WARNING = "warning"   # predicted failure — evacuate proactively
    FAILED = "failed"     # hard down — reactive path only


@dataclass
class HealthEvent:
    time: float
    node: str
    state: Health
    reason: str = ""


class HealthMonitor:
    """Health state per node + subscriber notification."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.state: Dict[str, Health] = {n: Health.OK for n in cluster.nodes}
        self.events: List[HealthEvent] = []
        self._subscribers: List[Callable[[HealthEvent], None]] = []

    def subscribe(self, callback: Callable[[HealthEvent], None]) -> None:
        self._subscribers.append(callback)

    def report(self, node: str, state: Health, reason: str = "") -> HealthEvent:
        """Inject a health transition (sensor/operator input)."""
        self.cluster.node(node)  # existence check
        self.state[node] = state
        event = HealthEvent(time=self.env.now, node=node, state=state, reason=reason)
        self.events.append(event)
        self.cluster.trace("health", state.value, node=node, reason=reason)
        for callback in list(self._subscribers):
            callback(event)
        return event

    def healthy_nodes(self) -> List[str]:
        return sorted(n for n, s in self.state.items() if s is Health.OK)

    def schedule_report(self, at_time: float, node: str, state: Health, reason: str = "") -> None:
        """Deliver a health transition at a future simulated time."""

        def _fire():
            yield self.env.timeout(max(at_time - self.env.now, 0.0))
            self.report(node, state, reason)

        self.env.process(_fire(), name=f"health.{node}")


@dataclass
class FtAction:
    """One reaction taken by the manager."""

    time: float
    kind: str           # "evacuate" | "restore"
    node: str
    detail: str = ""
    ok: bool = True


class FaultToleranceManager:
    """Automatic evacuation/restore policy bound to one job."""

    def __init__(
        self,
        cluster: "Cluster",
        job: "MpiJob",
        qemus: Sequence["QemuProcess"],
        monitor: Optional[HealthMonitor] = None,
        checkpointer: Optional[ProactiveCheckpoint] = None,
        state=None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.job = job
        self.qemus = list(qemus)
        self.monitor = monitor if monitor is not None else HealthMonitor(cluster)
        #: ``state`` (a fleet state store) makes the embedded scheduler's
        #: placement reservation-aware when fleet and FT manager coexist.
        self.scheduler = CloudScheduler(cluster, state=state)
        self.checkpointer = checkpointer
        self.last_checkpoint: Optional[CheckpointResult] = None
        self.actions: List[FtAction] = []
        self._busy = False
        self.monitor.subscribe(self._on_event)

    # -- checkpoint schedule -------------------------------------------------------

    def run_checkpoint_schedule(self, period_s: float, rounds: int = 10**9):
        """Periodic proactive checkpoints (generator — run as a process)."""
        if self.checkpointer is None:
            raise SchedulerError("no ProactiveCheckpoint attached")
        for _ in range(rounds):
            yield self.env.timeout(period_s)
            if self.job.live_ranks < self.job.size:
                return
            reason = self._skip_reason()
            if reason is not None:
                # Checkpointing a VM mid-migration (or one that no longer
                # runs here) would capture a torn or stale image.
                self.cluster.trace("ft", "checkpoint_skipped", reason=reason)
                continue
            self.last_checkpoint = yield from self.checkpointer.execute(
                self.job, self.qemus
            )

    # -- reactions -----------------------------------------------------------------------

    def _on_event(self, event: HealthEvent) -> None:
        if event.state is Health.WARNING:
            self.env.process(self._evacuate(event), name=f"ft.evacuate.{event.node}")
        elif event.state is Health.FAILED:
            self.env.process(self._react_to_failure(event), name=f"ft.restore.{event.node}")

    def _vms_on(self, node: str) -> List["QemuProcess"]:
        return [q for q in self.qemus if q.node.name == node]

    def _skip_reason(self) -> Optional[str]:
        """Why the fleet cannot be checkpointed or evacuated right now.

        Guards against racing a migration already in flight and against
        acting on VMs that are gone — shut off with a dead host, or
        superseded by a checkpoint restore that booted replacements
        elsewhere (this manager still holds the stale handles).
        """
        for qemu in self.qemus:
            migration = qemu.current_migration
            if migration is not None and migration.stats.in_flight:
                return f"{qemu.vm.name}: mid-migration"
            if qemu.node.failed:
                return f"{qemu.vm.name}: host {qemu.node.name} failed"
            if qemu.vm.state is not RunState.RUNNING:
                return f"{qemu.vm.name}: {qemu.vm.state.value}"
        return None

    def _evacuate(self, event: HealthEvent):
        """Predicted failure: Ninja-migrate every VM of the whole fleet.

        All VMs move together — the SymVirt park is global, and leaving
        peers behind would split the job across a degraded node anyway.

        An *aborted* sequence (the transactional orchestrator rolled the
        job back to a safe, running state) is retried on alternate hosts:
        the failed destination set is blacklisted and the next-best
        healthy set is tried, until either an attempt completes or the
        healthy pool is exhausted.
        """
        if self._busy or not self._vms_on(event.node):
            return
        reason = self._skip_reason()
        if reason is not None:
            self.actions.append(FtAction(
                self.env.now, "evacuate", event.node,
                detail=f"skipped: {reason}", ok=False,
            ))
            return
        self._busy = True
        try:
            vm_bytes = max(q.vm.memory.size_bytes for q in self.qemus)
            tried: set = set()
            while True:
                healthy = [
                    h for h in self.monitor.healthy_nodes()
                    if h not in tried
                    and not self.cluster.node(h).vms
                    and self.cluster.node(h).free_memory >= vm_bytes
                ]
                if len(healthy) < len(self.qemus):
                    self.actions.append(FtAction(
                        self.env.now, "evacuate", event.node,
                        detail="insufficient healthy capacity"
                        + (f" after {len(tried)} blacklisted hosts" if tried else ""),
                        ok=False,
                    ))
                    return
                dst = healthy[: len(self.qemus)]
                plan = MigrationPlan.build(
                    self.cluster, self.qemus, dst,
                    attach_ib=None, label=f"evacuate:{event.node}",
                )
                try:
                    result = yield from self.scheduler.run_now(
                        "health-warning", plan, self.job
                    )
                except MigrationAbortedError as err:
                    # Rollback itself failed — the job is in an unknown
                    # state; retrying elsewhere could make it worse.
                    self.actions.append(FtAction(
                        self.env.now, "evacuate", event.node,
                        detail=f"unrecoverable: {err}", ok=False,
                    ))
                    return
                if not result.aborted:
                    self.actions.append(FtAction(
                        self.env.now, "evacuate", event.node,
                        detail=f"{len(self.qemus)} VMs, {result.breakdown}", ok=True,
                    ))
                    return
                # Aborted cleanly: the VMs are back where they started —
                # blacklist this destination set and try the next one.
                tried.update(dst)
                self.cluster.trace(
                    "ft", "evacuate_retry",
                    node=event.node,
                    failed_phase=result.failed_phase,
                    blacklisted=sorted(tried),
                )
                self.actions.append(FtAction(
                    self.env.now, "evacuate", event.node,
                    detail=f"aborted in {result.failed_phase}; "
                           f"retrying on alternate hosts",
                    ok=False,
                ))
        finally:
            self._busy = False

    def _react_to_failure(self, event: HealthEvent):
        """Hard failure: restore the latest checkpoint on healthy hosts."""
        lost = self._vms_on(event.node)
        if not lost:
            return
        for qemu in lost:
            if qemu.vm.state is not RunState.SHUTOFF:
                qemu.shutdown()
        if self.checkpointer is None or self.last_checkpoint is None:
            self.actions.append(FtAction(
                self.env.now, "restore", event.node,
                detail="no checkpoint available — job lost", ok=False,
            ))
            return
        healthy = [
            h for h in self.monitor.healthy_nodes() if not self.cluster.node(h).vms
        ]
        if not healthy:
            self.actions.append(FtAction(
                self.env.now, "restore", event.node,
                detail="no healthy capacity", ok=False,
            ))
            return
        restored = yield from self.checkpointer.restore(
            self.last_checkpoint.image_names, healthy, name_suffix="-r"
        )
        self.actions.append(FtAction(
            self.env.now, "restore", event.node,
            detail=f"restored {len(restored)} VMs on {[q.node.name for q in restored]}",
            ok=True,
        ))
        return restored
