"""Migration plans: which VMs move where, and what gets detached/attached.

"We assume that the cloud scheduler provides information, including the
source and destination nodes of migration, and the PCI ID of a VMM-bypass
I/O device" (Section III-C) — a :class:`MigrationPlan` is exactly that
information, validated against the cluster before execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.errors import PlanError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.vmm.qemu import QemuProcess


@dataclass
class PlanEntry:
    """One VM's movement."""

    qemu: "QemuProcess"
    dst_host: str
    #: Attach the destination node's IB HCA after the move?
    attach_ib: bool = False
    #: BDF hint of the device to attach (Figure 5 uses "04:00.0").
    attach_bdf: str = "04:00.0"

    @property
    def src_host(self) -> str:
        return self.qemu.node.name

    @property
    def is_self_migration(self) -> bool:
        return self.src_host == self.dst_host


@dataclass
class MigrationPlan:
    """A validated multi-VM movement + device plan."""

    cluster: "Cluster"
    entries: List[PlanEntry] = field(default_factory=list)
    #: Tag of the VMM-bypass device to detach before migrating.
    detach_tag: str = "vf0"
    label: str = ""

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        cluster: "Cluster",
        qemus: Sequence["QemuProcess"],
        dst_hosts: Sequence[str],
        attach_ib: Optional[bool] = None,
        detach_tag: str = "vf0",
        label: str = "",
    ) -> "MigrationPlan":
        """Positional mapping with wrap-around (enables consolidation).

        ``attach_ib=None`` auto-resolves per destination: attach whenever
        the destination node has a cabled VMM-bypass adapter (IB HCA or
        Myrinet NIC) and skip otherwise (fallback to Ethernet).
        """
        if not qemus:
            raise PlanError("plan needs at least one VM")
        if not dst_hosts:
            raise PlanError("plan needs at least one destination host")
        entries = []
        for i, qemu in enumerate(qemus):
            dst = dst_hosts[i % len(dst_hosts)]
            node = cluster.node(dst)
            attach = node.has_bypass_fabric if attach_ib is None else attach_ib
            entries.append(PlanEntry(qemu=qemu, dst_host=dst, attach_ib=attach))
        plan = cls(cluster=cluster, entries=entries, detach_tag=detach_tag, label=label)
        plan.validate()
        return plan

    # -- derived views --------------------------------------------------------------

    @property
    def qemus(self) -> List["QemuProcess"]:
        return [e.qemu for e in self.entries]

    @property
    def src_hostlist(self) -> List[str]:
        return [e.src_host for e in self.entries]

    @property
    def dst_hostlist(self) -> List[str]:
        return [e.dst_host for e in self.entries]

    @property
    def mapping(self) -> Dict[str, str]:
        return {e.qemu.vm.name: e.dst_host for e in self.entries}

    @property
    def is_node_to_node(self) -> bool:
        """True when at least one VM really changes hosts (noise applies)."""
        return any(not e.is_self_migration for e in self.entries)

    @property
    def any_attach(self) -> bool:
        return any(e.attach_ib for e in self.entries)

    def incoming_bytes_by_host(self) -> Dict[str, int]:
        """Guest RAM each destination must absorb (self-migrations land
        on RAM the VM already owns and are excluded).

        :meth:`validate` checks this against free memory; fleet-level
        planners use it to answer "what does this plan cost host X".
        """
        incoming_bytes: Dict[str, int] = {}
        for entry in self.entries:
            if entry.is_self_migration:
                continue
            incoming_bytes[entry.dst_host] = (
                incoming_bytes.get(entry.dst_host, 0)
                + entry.qemu.vm.memory.size_bytes
            )
        return incoming_bytes

    # -- validation -------------------------------------------------------------------

    def validate(self) -> None:
        """Check capacity, device availability, and mapping sanity."""
        seen_vms = set()
        for entry in self.entries:
            name = entry.qemu.vm.name
            if name in seen_vms:
                raise PlanError(f"{name} appears twice in the plan")
            seen_vms.add(name)
            node = self.cluster.node(entry.dst_host)  # raises on unknown host
            if entry.attach_ib and not node.has_bypass_fabric:
                raise PlanError(
                    f"{name} → {entry.dst_host}: attach_ib requested but the "
                    f"destination has no cabled IB HCA (or other VMM-bypass "
                    f"adapter)"
                )
        for host, nbytes in self.incoming_bytes_by_host().items():
            node = self.cluster.node(host)
            if nbytes > node.free_memory:
                raise PlanError(
                    f"{host}: plan lands {nbytes} B of guest RAM but only "
                    f"{node.free_memory:.0f} B are free"
                )

    def describe(self) -> str:
        lines = [f"MigrationPlan {self.label or '(unnamed)'}"]
        for e in self.entries:
            arrow = "↺" if e.is_self_migration else "→"
            ib = " +IB" if e.attach_ib else ""
            lines.append(f"  {e.qemu.vm.name}: {e.src_host} {arrow} {e.dst_host}{ib}")
        return "\n".join(lines)
