"""Power modelling and power-aware placement.

Section VII's second future-work item: "an intelligent VM placement in a
data center consists of heterogeneous racks for power saving."  Ninja
migration makes the placement *actuator* interconnect-transparent; this
module adds the missing pieces:

* :class:`PowerSpec` / :class:`PowerMeter` — blade + switch power draw
  integrated over simulated time (idle vs. per-busy-core, with empty
  nodes parked in a low-power state);
* :meth:`PowerAwarePlacer.plan` — choose the cheapest destination set
  that keeps vCPU overcommit under a bound, preferring to empty the
  power-hungry rack entirely (its switch can then sleep too).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.plan import MigrationPlan
from repro.errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.hardware.node import PhysicalNode
    from repro.vmm.qemu import QemuProcess


@dataclass(frozen=True)
class PowerSpec:
    """Electrical model (paper-era blades; watts)."""

    #: Blade drawing idle power (booted, no guest load).
    node_idle_w: float = 155.0
    #: Additional draw per busy core.
    node_per_core_w: float = 17.0
    #: Blade parked in standby (no resident VMs → can be powered down).
    node_standby_w: float = 18.0
    #: QDR InfiniBand blade switch (Mellanox M3601Q class).
    ib_switch_w: float = 226.0
    #: 10 GbE blade switch (Dell M8024 class).
    eth_switch_w: float = 152.0
    #: Myrinet clos switch.
    myrinet_switch_w: float = 198.0


class PowerMeter:
    """Integrates cluster power draw over simulated time."""

    def __init__(
        self,
        cluster: "Cluster",
        spec: PowerSpec = PowerSpec(),
        period_s: float = 5.0,
    ) -> None:
        if period_s <= 0:
            raise SchedulerError("period_s must be positive")
        self.cluster = cluster
        self.env = cluster.env
        self.spec = spec
        self.period_s = period_s
        self.energy_j = 0.0
        self.samples: List[tuple[float, float]] = []
        self._running = False

    # -- instantaneous model ---------------------------------------------------

    def node_power_w(self, node: "PhysicalNode") -> float:
        if not node.vms:
            return self.spec.node_standby_w
        return self.spec.node_idle_w + node.cpu.load * self.spec.node_per_core_w

    def switch_power_w(self) -> float:
        """Switches sleep when their whole sub-cluster is VM-free."""
        total = self.spec.eth_switch_w  # management network always on
        if self.cluster.ib_fabric is not None and any(
            n.vms for n in self.cluster.ib_nodes()
        ):
            total += self.spec.ib_switch_w
        if self.cluster.myrinet_fabric is not None and any(
            n.vms for n in self.cluster.myrinet_nodes()
        ):
            total += self.spec.myrinet_switch_w
        return total

    def cluster_power_w(self) -> float:
        return (
            sum(self.node_power_w(n) for n in self.cluster.nodes.values())
            + self.switch_power_w()
        )

    # -- integration --------------------------------------------------------------

    def start(self) -> "PowerMeter":
        if not self._running:
            self._running = True
            self.env.process(self._loop(), name="powermeter")
        return self

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            watts = self.cluster_power_w()
            self.samples.append((self.env.now, watts))
            yield self.env.timeout(self.period_s)
            self.energy_j += watts * self.period_s

    def mean_power_w(self) -> float:
        if not self.samples:
            return 0.0
        return sum(w for _, w in self.samples) / len(self.samples)


class PowerAwarePlacer:
    """Chooses migration plans that minimize estimated power draw."""

    def __init__(
        self,
        cluster: "Cluster",
        spec: PowerSpec = PowerSpec(),
        max_overcommit: float = 2.0,
    ) -> None:
        if max_overcommit < 1.0:
            raise SchedulerError("max_overcommit must be >= 1.0")
        self.cluster = cluster
        self.spec = spec
        self.max_overcommit = max_overcommit

    def _min_hosts(self, qemus: Sequence["QemuProcess"], cores: int) -> int:
        total_vcpus = sum(q.vm.vcpus for q in qemus)
        return max(-(-total_vcpus // int(cores * self.max_overcommit)), 1)

    def estimate_power_w(self, active_nodes: int, total_nodes: int, rack: str) -> float:
        """Steady-state draw of a placement (all active nodes loaded)."""
        spec = self.spec
        node_w = active_nodes * (spec.node_idle_w + 8 * spec.node_per_core_w)
        standby_w = (total_nodes - active_nodes) * spec.node_standby_w
        switch_w = spec.eth_switch_w
        if rack == "ib":
            switch_w += spec.ib_switch_w
        elif rack == "myrinet":
            switch_w += spec.myrinet_switch_w
        return node_w + standby_w + switch_w

    def plan(
        self, qemus: Sequence["QemuProcess"], label: str = "power-saving"
    ) -> MigrationPlan:
        """The cheapest feasible placement for ``qemus``.

        Candidate racks: stay on the bypass rack (consolidated), or move
        everything to the Ethernet rack (consolidated) so the bypass
        switch sleeps.  Capacity (RAM + overcommit bound) is respected.
        """
        vm_bytes = max(q.vm.memory.size_bytes for q in qemus)
        total_nodes = len(self.cluster.nodes)
        candidates: List[tuple[float, List[str]]] = []

        def feasible_hosts(nodes: List["PhysicalNode"], need: int, per_host: int) -> Optional[List[str]]:
            fits = [
                n.name
                for n in nodes
                if n.free_memory + sum(
                    q.vm.memory.size_bytes for q in qemus if q.node is n
                ) >= vm_bytes * per_host
            ]
            return fits[:need] if len(fits) >= need else None

        cores = min(n.cpu.cores for n in self.cluster.nodes.values())
        need = self._min_hosts(qemus, cores)
        per_host = -(-len(qemus) // need)

        # Candidate 1: consolidate onto the Ethernet rack.
        eth_hosts = feasible_hosts(self.cluster.eth_only_nodes(), need, per_host)
        if eth_hosts is not None:
            candidates.append(
                (self.estimate_power_w(need, total_nodes, "eth"), eth_hosts)
            )
        # Candidate 2: consolidate within the IB rack (switch stays on).
        ib_hosts = feasible_hosts(self.cluster.ib_nodes(), need, per_host)
        if ib_hosts is not None:
            candidates.append(
                (self.estimate_power_w(need, total_nodes, "ib"), ib_hosts)
            )
        # Candidate 3: Myrinet rack, when present.
        myri_hosts = feasible_hosts(self.cluster.myrinet_nodes(), need, per_host)
        if myri_hosts is not None:
            candidates.append(
                (self.estimate_power_w(need, total_nodes, "myrinet"), myri_hosts)
            )
        if not candidates:
            raise SchedulerError("no feasible power-saving placement")
        candidates.sort(key=lambda c: c[0])
        _, hosts = candidates[0]
        return MigrationPlan.build(
            self.cluster, qemus, hosts, attach_ib=None, label=label
        )
