"""Proactive checkpointing: coordinated VM snapshots of a running job.

SymVirt's stated aim is "to simultaneously migrate **and
checkpoint/restart** multiple co-located VMs" (Section III-B); the
paper's non-stop-maintenance use case restarts VMs on an Ethernet
cluster from images checkpointed on the InfiniBand cluster.  This module
provides that path:

* :meth:`ProactiveCheckpoint.execute` — park the job (two SymVirt
  rounds, like Ninja), detach the VMM-bypass devices, snapshot every VM
  to the NFS store in parallel, re-attach, resume.  The job continues —
  the snapshot is insurance.
* :meth:`ProactiveCheckpoint.restore` — boot fresh VMs from the stored
  images on (possibly interconnect-different) destination nodes after a
  failure.  The MPI job is then *relaunched from the checkpoint
  boundary* (BLCR-style restart semantics: recomputation since the last
  checkpoint is lost; the VMs and their memory state are not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.phases import PhaseTimeline
from repro.errors import SymVirtError
from repro.network.fabric import PortState
from repro.symvirt.controller import Controller
from repro.vmm.snapshot import SnapshotStats, checkpoint_vm, restore_vm

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.mpi.runtime import MpiJob
    from repro.storage.nfs import NfsServer
    from repro.vmm.qemu import QemuProcess


@dataclass
class CheckpointResult:
    """Outcome of one coordinated checkpoint."""

    timeline: PhaseTimeline
    snapshots: Dict[str, SnapshotStats] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Simulated time at which the job was parked — the instant whose
    #: state the images capture.  RPO accounting measures from here, not
    #: from ``finished_at``: work done *after* the park is not in the
    #: snapshot even though the write finishes later.
    consistency_at: float = 0.0

    @property
    def total_s(self) -> float:
        return self.finished_at - self.started_at

    @property
    def snapshot_s(self) -> float:
        return self.timeline.total("snapshot")

    @property
    def image_names(self) -> List[str]:
        return [s.image_name for s in self.snapshots.values()]


class ProactiveCheckpoint:
    """Coordinated checkpoint/restore for one cluster + NFS store."""

    def __init__(self, cluster: "Cluster", store: "NfsServer") -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.store = store

    def execute(
        self,
        job: "MpiJob",
        qemus: Sequence["QemuProcess"],
        detach_tag: str = "vf0",
        request_checkpoint: bool = True,
        image_suffix: str = "",
        extra_meta: Optional[dict] = None,
        warm_reattach: bool = False,
    ):
        """Snapshot all ``qemus`` while the job is parked (generator).

        ``image_suffix`` lets callers keep multiple generations of the
        same VM's image side by side (``vm.memsnap@g3``); ``extra_meta``
        is merged into every stored image's metadata.

        ``warm_reattach`` skips the subnet-manager sweep on re-attach:
        an in-place checkpoint releases only the guest's VF — the
        physical port never leaves the subnet, so unlike a cross-host
        migration the re-plumbed function does not pay the ~30 s hot-plug
        link training.  Periodic checkpoint schedules rely on this to
        keep the per-tick outage to the snapshot write itself.
        """
        env = self.env
        timeline = PhaseTimeline()
        t0 = env.now
        ctl = Controller(self.cluster, qemus)

        timeline.begin("coordination", env.now)
        if request_checkpoint:
            job.request_checkpoint()
        yield from ctl.wait_all()
        timeline.end("coordination", env.now)
        consistency_at = env.now

        # Round A: release VMM-bypass devices (snapshots are blocked on
        # assigned devices, exactly like migration).
        timeline.begin("detach", env.now)
        yield from ctl.device_detach(detach_tag)
        timeline.end("detach", env.now)
        yield from ctl.signal()
        yield from ctl.wait_all()

        # Round B: snapshot every VM in parallel (NFS-bandwidth bound),
        # then re-attach where the hardware exists.
        timeline.begin("snapshot", env.now)
        snapshots: Dict[str, SnapshotStats] = {}

        def _snap(qemu: "QemuProcess"):
            image_name = f"{qemu.vm.name}.memsnap{image_suffix}"
            stats = yield from checkpoint_vm(
                qemu, self.store, image_name=image_name, extra_meta=extra_meta
            )
            snapshots[qemu.vm.name] = stats

        yield ctl._parallel(_snap(q) for q in qemus)
        timeline.end("snapshot", env.now)

        timeline.begin("attach", env.now)
        reattach = [q for q in qemus if q.node.has_infiniband]
        if reattach:
            yield ctl._parallel(
                agent.device_attach(host="04:00.0", tag=detach_tag)
                for agent in ctl.agents
                if agent.qemu in reattach
            )
        timeline.end("attach", env.now)

        linkup_events = []
        for qemu in reattach:
            assignment = qemu.assignments.get(detach_tag)
            if assignment is None or assignment.function.port is None:
                raise SymVirtError(f"{qemu.vm.name}: re-attach left no port")
            port = assignment.function.port
            if warm_reattach and port.state is not PortState.ACTIVE:
                port.fabric.force_active(port)
            linkup_events.append(port.wait_active())

        yield from ctl.signal()
        timeline.begin("linkup", env.now)
        if linkup_events:
            yield env.all_of(linkup_events)
        timeline.end("linkup", env.now)
        yield from ctl.quit()

        result = CheckpointResult(
            timeline=timeline,
            snapshots=snapshots,
            started_at=t0,
            finished_at=env.now,
            consistency_at=consistency_at,
        )
        self.cluster.trace(
            "checkpoint", "completed",
            vms=len(snapshots), seconds=round(result.total_s, 2),
        )
        return result

    def restore(
        self,
        image_names: Sequence[str],
        dst_hosts: Sequence[str],
        name_suffix: str = "",
    ):
        """Boot new VMs from stored images on ``dst_hosts`` (generator).

        Images map to hosts positionally (wrap-around allowed, as with
        migration plans).  Returns the new QemuProcess list.
        """
        if not image_names:
            raise SymVirtError("nothing to restore")
        if not dst_hosts:
            raise SymVirtError("no destination hosts")
        restored: List["QemuProcess"] = []

        def _one(image_name: str, host: str):
            node = self.cluster.node(host)
            meta_name = self.store.image(image_name).meta.get("vm_name", image_name)
            qemu = yield from restore_vm(
                self.cluster, self.store, image_name, node,
                new_name=f"{meta_name}{name_suffix}",
            )
            restored.append(qemu)

        processes = [
            self.env.process(_one(image, dst_hosts[i % len(dst_hosts)]))
            for i, image in enumerate(image_names)
        ]
        yield self.env.all_of(processes)
        restored.sort(key=lambda q: q.vm.name)
        self.cluster.trace("checkpoint", "restored", vms=len(restored))
        return restored
