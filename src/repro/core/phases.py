"""Phase timeline: spans of a Ninja migration sequence.

The paper decomposes overhead into *coordination*, *hotplug* (detach +
attach + confirm), *migration*, and *link-up* (Figure 4 / Section IV-B).
:class:`PhaseTimeline` records the raw spans; the breakdown object in
:mod:`repro.core.metrics` aggregates them the way the figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PhaseSpan:
    """One named interval of simulated time."""

    name: str
    start: float
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"phase {self.name!r} not closed")
        return self.end - self.start


class PhaseTimeline:
    """Ordered record of phase spans (phases may repeat)."""

    def __init__(self) -> None:
        self.spans: List[PhaseSpan] = []
        self._open: Dict[str, PhaseSpan] = {}

    def begin(self, name: str, now: float) -> PhaseSpan:
        if name in self._open:
            raise ValueError(f"phase {name!r} already open")
        span = PhaseSpan(name, now)
        self._open[name] = span
        self.spans.append(span)
        return span

    def end(self, name: str, now: float) -> PhaseSpan:
        span = self._open.pop(name, None)
        if span is None:
            raise ValueError(f"phase {name!r} is not open")
        span.end = now
        return span

    def instant(self, name: str, now: float) -> PhaseSpan:
        """Record a zero-length marker."""
        span = PhaseSpan(name, now, now)
        self.spans.append(span)
        return span

    def total(self, name: str) -> float:
        """Sum of all closed spans with this name."""
        return sum(s.duration for s in self.spans if s.name == name and s.end is not None)

    def names(self) -> List[str]:
        seen: List[str] = []
        for span in self.spans:
            if span.name not in seen:
                seen.append(span.name)
        return seen

    def render(self) -> str:
        """Human-readable timeline (for example scripts / debugging)."""
        lines = []
        for span in self.spans:
            end = f"{span.end:9.3f}" if span.end is not None else "     open"
            dur = f"{span.duration:8.3f}s" if span.end is not None else ""
            lines.append(f"  {span.start:9.3f} → {end}  {span.name:<14} {dur}")
        return "\n".join(lines)
