"""The cloud scheduler: triggers and placement policy.

"A cloud scheduler delivers a trigger event, e.g., a migration or
checkpoint/restart request, to both an MPI runtime system and the SymVirt
controller" (Section III-B).  This module provides:

* **placement policies** — pick fallback destinations (spread or
  consolidate), recovery destinations, and validate capacity.  Picking
  is delegated to the shared
  :class:`~repro.orchestrator.placement.PlacementEngine`, so the
  single-job scheduler and the fleet orchestrator apply one capacity
  model;
* **trigger events** — scheduled maintenance / disaster / consolidation
  requests that fire at a simulated time and run a Ninja sequence.

When constructed with a :class:`~repro.orchestrator.state.FleetStateStore`,
the scheduler becomes *reservation-aware*: plans built by the factories
claim their destination capacity in the store immediately (so
concurrent planners can't double-book a host), and the claim is
released when the triggered sequence finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.ninja import NinjaMigration, NinjaResult
from repro.core.plan import MigrationPlan
from repro.errors import SchedulerError
from repro.orchestrator.placement import PlacementEngine
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.mpi.runtime import MpiJob
    from repro.orchestrator.state import FleetStateStore
    from repro.vmm.qemu import QemuProcess


@dataclass
class TriggerEvent:
    """A scheduled request to run a Ninja sequence."""

    at_time: float
    reason: str  # "maintenance" | "disaster" | "consolidation" | "recovery"
    plan: MigrationPlan
    #: Filled once the sequence completes.
    result: Optional[NinjaResult] = None
    done: Optional[Event] = None
    #: Set instead of ``result`` when the trigger could not run (e.g. the
    #: job finished before the scheduled time).
    error: Optional[Exception] = None


class CloudScheduler:
    """Placement policy + trigger delivery for one cluster."""

    def __init__(
        self, cluster: "Cluster", state: Optional["FleetStateStore"] = None
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.state = state
        self.placement = PlacementEngine(cluster, state)
        self.ninja = NinjaMigration(cluster)
        self.triggers: List[TriggerEvent] = []

    # -- placement policies ----------------------------------------------------------

    def pick_fallback_hosts(
        self, qemus: Sequence["QemuProcess"], consolidate_to: Optional[int] = None
    ) -> List[str]:
        """Destinations on the Ethernet cluster for a fallback.

        ``consolidate_to=n`` packs the VMs onto ``n`` hosts (the paper's
        "2 hosts (TCP)" server-consolidation case); default is one VM per
        host.  With a state store attached, hosts reserved by other
        in-flight plans don't count as free.
        """
        return self.placement.pick_packed(
            qemus,
            self.cluster.eth_only_nodes(),
            consolidate_to=consolidate_to,
        )

    def pick_recovery_hosts(self, qemus: Sequence["QemuProcess"]) -> List[str]:
        """Destinations back on the IB cluster (one VM per host)."""
        if not qemus:
            raise SchedulerError("no VMs to place")
        return self.placement.pick_spread(
            qemus, self.cluster.ib_nodes(), need_hca=True
        )

    # -- plan factories ----------------------------------------------------------------

    def _claim(self, plan: MigrationPlan) -> MigrationPlan:
        if self.state is not None:
            self.state.claim_plan(plan, owner=plan)
        return plan

    def _release(self, plan: MigrationPlan) -> None:
        if self.state is not None:
            self.state.release_owner(plan)

    def plan_fallback(
        self,
        qemus: Sequence["QemuProcess"],
        consolidate_to: Optional[int] = None,
        label: str = "fallback",
    ) -> MigrationPlan:
        hosts = self.pick_fallback_hosts(qemus, consolidate_to)
        return self._claim(
            MigrationPlan.build(self.cluster, qemus, hosts, attach_ib=False, label=label)
        )

    def plan_recovery(
        self, qemus: Sequence["QemuProcess"], label: str = "recovery"
    ) -> MigrationPlan:
        hosts = self.pick_recovery_hosts(qemus)
        return self._claim(
            MigrationPlan.build(self.cluster, qemus, hosts, attach_ib=True, label=label)
        )

    def plan_spread(
        self,
        qemus: Sequence["QemuProcess"],
        dst_hosts: Sequence[str],
        label: str = "spread",
    ) -> MigrationPlan:
        """De-consolidate onto explicit hosts (attach auto-resolved)."""
        return self._claim(
            MigrationPlan.build(
                self.cluster, qemus, list(dst_hosts), attach_ib=None, label=label
            )
        )

    def release_plan(self, plan: MigrationPlan) -> None:
        """Drop a claimed plan's reservations without running it."""
        self._release(plan)

    # -- trigger delivery -----------------------------------------------------------------

    def schedule(self, at_time: float, reason: str, plan: MigrationPlan, job: "MpiJob") -> TriggerEvent:
        """Arrange for a Ninja sequence to run at ``at_time``.

        Returns the trigger; ``trigger.done`` fires with the NinjaResult.
        """
        if at_time < self.env.now:
            raise SchedulerError(f"cannot schedule in the past ({at_time} < {self.env.now})")
        trigger = TriggerEvent(at_time=at_time, reason=reason, plan=plan, done=Event(self.env))
        self.triggers.append(trigger)

        def _fire():
            yield self.env.timeout(at_time - self.env.now)
            self.cluster.trace("scheduler", "trigger", reason=reason, label=plan.label)
            try:
                result = yield from self.ninja.execute(job, plan)
            except Exception as err:  # job may have finished meanwhile
                trigger.error = err
                trigger.done.succeed(None)
                self.cluster.trace("scheduler", "trigger_failed", reason=reason, error=str(err))
                return
            finally:
                self._release(plan)
            trigger.result = result
            trigger.done.succeed(result)

        self.env.process(_fire(), name=f"trigger.{reason}")
        return trigger

    def run_now(self, reason: str, plan: MigrationPlan, job: "MpiJob"):
        """Execute a Ninja sequence immediately (generator)."""
        self.cluster.trace("scheduler", "trigger", reason=reason, label=plan.label)
        try:
            result = yield from self.ninja.execute(job, plan)
        finally:
            self._release(plan)
        trigger = TriggerEvent(at_time=self.env.now, reason=reason, plan=plan, result=result)
        self.triggers.append(trigger)
        return result
