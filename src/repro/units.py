"""Physical units and conversions used throughout the simulation.

All simulated time is in **seconds** (float), all data sizes in **bytes**
(int), and all rates in **bytes per second** (float).  These helpers exist so
that calibration constants and experiment parameters can be written the way
the paper writes them ("20 GB of memory", "QDR Infiniband", "10 GbE",
"1.3 Gbps") without sprinkling magic multipliers around the code base.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Data sizes (bytes).  Binary prefixes for memory, decimal for marketing
# network rates, matching common usage in the systems literature.
# ---------------------------------------------------------------------------

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB

#: x86 base page size used by the guest-memory model.
PAGE_SIZE: int = 4 * KiB

# ---------------------------------------------------------------------------
# Time (seconds).
# ---------------------------------------------------------------------------

USEC: float = 1e-6
MSEC: float = 1e-3
SECOND: float = 1.0
MINUTE: float = 60.0


def usec(n: float) -> float:
    """Return ``n`` microseconds expressed in seconds."""
    return n * USEC


def msec(n: float) -> float:
    """Return ``n`` milliseconds expressed in seconds."""
    return n * MSEC


# ---------------------------------------------------------------------------
# Rates (bytes/second).  Network gear is quoted in bits per second.
# ---------------------------------------------------------------------------


def gbps(n: float) -> float:
    """Convert gigabits-per-second (decimal) to bytes-per-second."""
    return n * 1e9 / 8.0


def mbps(n: float) -> float:
    """Convert megabits-per-second (decimal) to bytes-per-second."""
    return n * 1e6 / 8.0


def gib_per_s(n: float) -> float:
    """Convert GiB/s to bytes-per-second (memory bandwidth style)."""
    return n * GiB


def bytes_to_gib(n: float) -> float:
    """Express a byte count in GiB (for reporting)."""
    return n / GiB


def pages(nbytes: int) -> int:
    """Number of 4 KiB pages needed to hold ``nbytes`` (rounded up)."""
    return -(-int(nbytes) // PAGE_SIZE)


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary prefixes), e.g. ``'20.0 GiB'``."""
    n = float(n)
    for unit, width in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= width:
            return f"{n / width:.1f} {unit}"
    return f"{n:.0f} B"


def fmt_rate(n: float) -> str:
    """Human-readable rate in bits/s (decimal prefixes), e.g. ``'10.0 Gbps'``."""
    bits = float(n) * 8.0
    for unit, width in (("Gbps", 1e9), ("Mbps", 1e6), ("Kbps", 1e3)):
        if abs(bits) >= width:
            return f"{bits / width:.1f} {unit}"
    return f"{bits:.0f} bps"


def fmt_time(t: float) -> str:
    """Human-readable duration, e.g. ``'29.91 s'`` or ``'3.2 ms'``."""
    t = float(t)
    if abs(t) >= 1.0:
        return f"{t:.2f} s"
    if abs(t) >= MSEC:
        return f"{t / MSEC:.1f} ms"
    return f"{t / USEC:.1f} us"
