"""MPI benchmark workloads used by the paper's experiments.

* :class:`~repro.workloads.memtest.MemtestWorkload` — the memory-intensive
  micro benchmark of Sections IV-B1/IV-B2 (sequential uniform writes over
  a 2–16 GB array);
* :class:`~repro.workloads.npb.NpbWorkload` — NAS Parallel Benchmarks
  BT/CG/FT/LU models, class C/D (Section IV-B3);
* :class:`~repro.workloads.bcast_reduce.BcastReduceLoop` — the Figure 8
  workload: repeated 8 GB-per-node broadcast + reduce iterations.
"""

from repro.workloads.base import Workload, claim_region
from repro.workloads.bcast_reduce import BcastReduceLoop
from repro.workloads.memtest import MemtestWorkload
from repro.workloads.npb import NPB_SUITE, NPB_SUITE_C, NpbSpec, NpbWorkload
from repro.workloads.stencil import StencilConfig, StencilWorkload

__all__ = [
    "BcastReduceLoop",
    "MemtestWorkload",
    "NPB_SUITE",
    "NPB_SUITE_C",
    "NpbSpec",
    "NpbWorkload",
    "StencilConfig",
    "StencilWorkload",
    "Workload",
    "claim_region",
]
