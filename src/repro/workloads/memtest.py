"""The memtest micro benchmark (Sections IV-B1 and IV-B2).

"A memtest benchmark sequentially writes data to a 2 GB memory array.
We used 8 VMs, and an MPI process ran on each VM."  The written pattern
is uniform, so the array compresses during migration — the property that
makes Figure 6's migration times nearly independent of the array size.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.guestos.process import MemoryWriter
from repro.units import GiB
from repro.vmm.guest_memory import PageClass
from repro.workloads.base import Workload, claim_region

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import CommView
    from repro.mpi.runtime import MpiProcess


class MemtestWorkload(Workload):
    """Sequential memory writer, one MPI process per VM.

    Parameters
    ----------
    array_bytes:
        Target array size (the paper sweeps 2, 4, 8, 16 GB).
    duration_s:
        Stop after this much guest-visible write activity per rank
        (``None`` → run until ``max_passes``).
    max_passes:
        Stop after this many full array sweeps (``None`` → run forever,
        until stopped externally).
    page_class:
        ``UNIFORM`` (default, compressible — the paper's memtest) or
        ``DATA`` (incompressible — the compression ablation).
    """

    name = "memtest"

    def __init__(
        self,
        array_bytes: int = 2 * GiB,
        duration_s: Optional[float] = None,
        max_passes: Optional[int] = None,
        page_class: PageClass = PageClass.UNIFORM,
    ) -> None:
        self.array_bytes = int(array_bytes)
        self.duration_s = duration_s
        self.max_passes = max_passes
        self.page_class = page_class
        #: rank → completed passes (filled as ranks finish).
        self.passes: dict[int, int] = {}

    def rank_main(self, proc: "MpiProcess", comm: "CommView"):
        offset = claim_region(proc.vm, self.array_bytes)
        writer = MemoryWriter(
            proc.vm,
            self.array_bytes,
            page_class=self.page_class,
            offset_bytes=offset,
        )
        yield from comm.barrier()
        active = 0.0
        while True:
            t0 = proc.env.now
            yield from writer.step()
            active += proc.env.now - t0
            # Poll for checkpoint requests between chunks (the MPI
            # progress engine does this in the real runtime).
            yield from proc.maybe_service_cr()
            if self.max_passes is not None and writer.passes >= self.max_passes:
                break
            if self.duration_s is not None and active >= self.duration_s:
                break
        yield from comm.barrier()
        self.passes[comm.rank] = writer.passes
        return writer.passes
