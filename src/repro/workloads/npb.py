"""NAS Parallel Benchmarks models: BT, CG, FT, LU (Section IV-B3).

Each benchmark is an analytic skeleton — per-iteration compute plus the
benchmark's characteristic communication pattern — with class C/D problem
shapes.  The per-rank compute budget and message volumes are calibrated so
that class D at 64 ranks on the simulated AGC cluster lands in the
several-hundred-second range of Figure 7; absolute agreement with the
authors' testbed is out of scope (see EXPERIMENTS.md), the experiment's
point being **baseline vs proposed**: one Ninja migration adds exactly
hotplug + migration(∝ footprint) + link-up.

Patterns:

* **BT/SP-style** — 3-D face exchanges: six neighbour messages per
  iteration;
* **CG** — row/column partner exchanges plus dot-product allreduces;
* **FT** — global transpose: one all-to-all per iteration (dominant);
* **LU** — wavefront pencil exchanges: many small north/south messages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.errors import MpiError
from repro.units import GiB, MiB
from repro.vmm.guest_memory import PageClass
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import CommView
    from repro.mpi.runtime import MpiProcess


@dataclass(frozen=True)
class NpbSpec:
    """Shape of one benchmark at one problem class."""

    name: str
    class_name: str
    iterations: int
    #: Aggregate compute across the whole run, in rank-core-seconds at the
    #: reference 64-rank decomposition (divided evenly per rank).
    total_core_seconds: float
    #: Communication pattern: "faces" | "cg" | "alltoall" | "wavefront".
    pattern: str
    #: Per-rank bytes per neighbour message (faces/cg/wavefront) or per
    #: peer (alltoall), at the reference 64-rank decomposition.
    msg_bytes: int
    #: Messages per rank per iteration (pattern-specific meaning).
    msgs_per_iter: int
    #: Resident working set per *VM* at 8 ranks/VM (drives migration time;
    #: the paper reports 2.3 GB – 16 GB across the four benchmarks).
    footprint_per_vm: int
    reference_ranks: int = 64

    def per_rank_compute_s(self, nranks: int) -> float:
        """Per-rank, per-iteration compute seconds at ``nranks``."""
        total = self.total_core_seconds * (self.reference_ranks / nranks)
        return total / self.reference_ranks / self.iterations

    def scaled_msg_bytes(self, nranks: int) -> int:
        """Surface-to-volume message scaling relative to 64 ranks."""
        scale = (self.reference_ranks / nranks) ** (2.0 / 3.0)
        return max(int(self.msg_bytes * scale), 1)


#: Class D shapes, calibrated for 64 ranks (8 VMs × 8 ranks).
NPB_SUITE: Dict[str, NpbSpec] = {
    "BT": NpbSpec(
        name="BT", class_name="D", iterations=250,
        total_core_seconds=64 * 690.0, pattern="faces",
        msg_bytes=11 * MiB, msgs_per_iter=6,
        footprint_per_vm=int(6.5 * GiB),
    ),
    "CG": NpbSpec(
        name="CG", class_name="D", iterations=100,
        total_core_seconds=64 * 540.0, pattern="cg",
        msg_bytes=24 * MiB, msgs_per_iter=4,
        footprint_per_vm=int(2.3 * GiB),
    ),
    "FT": NpbSpec(
        name="FT", class_name="D", iterations=25,
        total_core_seconds=64 * 340.0, pattern="alltoall",
        msg_bytes=8 * MiB, msgs_per_iter=1,
        footprint_per_vm=16 * GiB,
    ),
    "LU": NpbSpec(
        name="LU", class_name="D", iterations=300,
        total_core_seconds=64 * 560.0, pattern="wavefront",
        msg_bytes=int(0.8 * MiB), msgs_per_iter=4,
        footprint_per_vm=int(3.8 * GiB),
    ),
}

#: Class C (for laptop-scale tests): ~16× smaller problem.
NPB_SUITE_C: Dict[str, NpbSpec] = {
    key: NpbSpec(
        name=spec.name, class_name="C", iterations=max(spec.iterations // 5, 5),
        total_core_seconds=spec.total_core_seconds / 16.0, pattern=spec.pattern,
        msg_bytes=max(spec.msg_bytes // 6, 1), msgs_per_iter=spec.msgs_per_iter,
        footprint_per_vm=spec.footprint_per_vm // 8,
    )
    for key, spec in NPB_SUITE.items()
}


class NpbWorkload(Workload):
    """One NPB benchmark instance."""

    def __init__(self, spec: NpbSpec, procs_per_vm: int = 8) -> None:
        self.spec = spec
        self.procs_per_vm = procs_per_vm
        #: rank 0's measured wall time, filled at completion.
        self.elapsed_s: float = 0.0

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"{self.spec.name}.{self.spec.class_name}"

    # -- communication phases (SPMD generators) -----------------------------------

    def _faces(self, comm: "CommView", msg: int):
        """3-D face exchange: pair with ±1, ±k, ±k² neighbours."""
        size, rank = comm.size, comm.rank
        k = max(int(round(size ** (1.0 / 3.0))), 1)
        strides = sorted({s for s in (1, k, k * k) if s % size != 0})
        for stride in strides:
            for direction in (+1, -1):
                dst = (rank + direction * stride) % size
                src = (rank - direction * stride) % size
                if dst == rank:
                    continue
                yield from comm.sendrecv(dst, msg, src, tag=1)

    def _cg(self, comm: "CommView", msg: int):
        """Row partner exchanges + two scalar allreduces."""
        size, rank = comm.size, comm.rank
        half = size // 2
        if half:
            partner = rank ^ half if (rank ^ half) < size else rank
            if partner != rank:
                yield from comm.sendrecv(partner, msg, partner, tag=2)
        neighbour = rank ^ 1 if (rank ^ 1) < size else rank
        if neighbour != rank:
            yield from comm.sendrecv(neighbour, msg, neighbour, tag=3)
        yield from comm.allreduce(8)
        yield from comm.allreduce(8)

    def _wavefront(self, comm: "CommView", msg: int, sweeps: int):
        """LU pencil exchanges: repeated small neighbour messages."""
        size, rank = comm.size, comm.rank
        for _ in range(sweeps):
            dst = (rank + 1) % size
            src = (rank - 1) % size
            yield from comm.sendrecv(dst, msg, src, tag=4)

    # -- main ---------------------------------------------------------------------------

    def rank_main(self, proc: "MpiProcess", comm: "CommView"):
        spec = self.spec
        footprint_per_rank = spec.footprint_per_vm // self.procs_per_vm
        self.populate(proc, footprint_per_rank, PageClass.DATA)
        yield from comm.barrier()
        t_start = proc.env.now

        compute_s = spec.per_rank_compute_s(comm.size)
        msg = spec.scaled_msg_bytes(comm.size)
        for _ in range(spec.iterations):
            yield proc.vm.compute(compute_s, nthreads=1)
            if spec.pattern == "faces":
                yield from self._faces(comm, msg)
            elif spec.pattern == "cg":
                yield from self._cg(comm, msg)
            elif spec.pattern == "alltoall":
                yield from comm.alltoall(msg)
            elif spec.pattern == "wavefront":
                yield from self._wavefront(comm, msg, spec.msgs_per_iter)
            else:  # pragma: no cover - spec validation
                raise MpiError(f"unknown NPB pattern {spec.pattern!r}")

        yield from comm.barrier()
        if comm.rank == 0:
            self.elapsed_s = proc.env.now - t_start
        return self.elapsed_s
