"""The Figure 8 workload: repeated broadcast + reduce of 8 GB per node.

"The benchmark program used was a simple MPI program that repeatedly
broadcasts and reduces 8 GB data per a node. … The elapsed time of each
iteration should decrease, as the performance of interconnection
increases.  This is because MPI_Bcast and MPI_Reduce are dominant in the
execution time."

With ``procs_per_vm`` ranks on each VM the 8 GB node payload is split
evenly, so the aggregate volume is placement-invariant — which is why the
paper's total overhead is "identical as the number of processes per VM
increases from 1 to 8".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.metrics import IterationSample, IterationSeries
from repro.units import GB
from repro.vmm.guest_memory import PageClass
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import CommView
    from repro.mpi.runtime import MpiProcess


class BcastReduceLoop(Workload):
    """Stepped bcast+reduce loop with per-iteration timing.

    Parameters
    ----------
    iterations:
        Total steps (the paper runs 40: four phases of 10).
    bytes_per_node:
        Payload broadcast and reduced per VM per iteration (8 GB).
    procs_per_vm:
        Rank count per VM; per-rank payload is ``bytes_per_node / ppv``.
    on_step:
        Callback ``(step, elapsed_s)`` fired by comm-rank 0 after each
        iteration — the Figure 8 harness uses it to trigger migrations at
        steps 10/20/30 and to label phases.
    phase_label:
        Zero-arg callable returning the current phase label for samples.
    """

    name = "bcast_reduce"

    def __init__(
        self,
        iterations: int = 40,
        bytes_per_node: int = 8 * GB,
        procs_per_vm: int = 1,
        on_step: Optional[Callable[[int, float], None]] = None,
        phase_label: Optional[Callable[[], str]] = None,
    ) -> None:
        self.iterations = iterations
        self.bytes_per_node = int(bytes_per_node)
        self.procs_per_vm = max(int(procs_per_vm), 1)
        self.on_step = on_step
        self.phase_label = phase_label
        self.series = IterationSeries(label=f"bcast_reduce x{iterations}")

    @property
    def bytes_per_rank(self) -> int:
        return self.bytes_per_node // self.procs_per_vm

    def rank_main(self, proc: "MpiProcess", comm: "CommView"):
        # The send/receive buffers live in guest memory as real data —
        # they transfer in full during a migration.
        self.populate(proc, self.bytes_per_rank, PageClass.DATA)
        yield from comm.barrier()
        for step in range(1, self.iterations + 1):
            t0 = proc.env.now
            yield from comm.bcast(self.bytes_per_rank, root=0)
            yield from comm.reduce(self.bytes_per_rank, root=0)
            elapsed = proc.env.now - t0
            if comm.rank == 0:
                label = self.phase_label() if self.phase_label else ""
                self.series.add(IterationSample(step=step, elapsed_s=elapsed, phase=label))
                if self.on_step is not None:
                    self.on_step(step, elapsed)
        yield from comm.barrier()
        return self.series if comm.rank == 0 else None
