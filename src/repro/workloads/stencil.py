"""A 2-D stencil (halo-exchange) workload.

The canonical CFD/heat-equation communication pattern: ranks form a 2-D
process grid, each iteration computes over the local tile and exchanges
one-cell-deep halos with the four neighbours.  Unlike the NPB skeletons
this workload is *configurable* (grid size, halo width, compute
intensity), making it the go-to for exploring how Ninja overhead
interacts with an application's own communication/computation ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import MpiError
from repro.units import MiB
from repro.vmm.guest_memory import PageClass
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import CommView
    from repro.mpi.runtime import MpiProcess

TAG_HALO = -30


def process_grid(size: int) -> tuple[int, int]:
    """The most-square (rows, cols) factorization of ``size``."""
    rows = int(math.sqrt(size))
    while size % rows != 0:
        rows -= 1
    return rows, size // rows


@dataclass
class StencilConfig:
    """Shape of one stencil run."""

    #: Global grid points per dimension (double precision).
    global_points: int = 16_384
    #: Halo depth in cells.
    halo_width: int = 1
    #: Bytes per grid point (one double by default).
    bytes_per_point: int = 8
    #: Flops per point per iteration (5-point stencil ≈ 5 flops + update).
    flops_per_point: float = 8.0
    #: Sustained per-core flop rate of the simulated Xeon E5540.
    core_flops: float = 2.0e9
    iterations: int = 50

    def tile_points(self, nranks: int) -> int:
        """Points per rank tile (square decomposition)."""
        return self.global_points * self.global_points // nranks

    def halo_bytes(self, nranks: int) -> int:
        """Bytes of one face halo message."""
        rows, cols = process_grid(nranks)
        tile_edge = self.global_points // max(rows, cols)
        return max(tile_edge * self.halo_width * self.bytes_per_point, 1)

    def compute_seconds(self, nranks: int) -> float:
        return self.tile_points(nranks) * self.flops_per_point / self.core_flops


class StencilWorkload(Workload):
    """SPMD 2-D halo exchange."""

    name = "stencil2d"

    def __init__(self, config: Optional[StencilConfig] = None) -> None:
        self.config = config if config is not None else StencilConfig()
        #: rank 0's wall time, filled at completion.
        self.elapsed_s: float = 0.0
        #: Completed iterations per rank (diagnostics).
        self.completed: dict[int, int] = {}

    def _neighbours(self, rank: int, size: int) -> list[int]:
        """N/S/E/W neighbours on a non-periodic process grid."""
        rows, cols = process_grid(size)
        r, c = divmod(rank, cols)
        result = []
        if r > 0:
            result.append(rank - cols)
        if r < rows - 1:
            result.append(rank + cols)
        if c > 0:
            result.append(rank - 1)
        if c < cols - 1:
            result.append(rank + 1)
        return result

    def rank_main(self, proc: "MpiProcess", comm: "CommView"):
        config = self.config
        size = comm.size
        tile_bytes = config.tile_points(size) * config.bytes_per_point
        self.populate(proc, tile_bytes, PageClass.DATA)
        halo = config.halo_bytes(size)
        compute_s = config.compute_seconds(size)
        neighbours = self._neighbours(comm.rank, size)
        yield from comm.barrier()
        t0 = proc.env.now
        done = 0
        for _ in range(config.iterations):
            yield proc.vm.compute(compute_s, nthreads=1)
            # Post all halo sends, then drain the matching receives —
            # the classic nonblocking exchange (deadlock-free for any
            # neighbour order).
            pending = [
                comm.isend(n, halo, tag=TAG_HALO) for n in neighbours
            ]
            for _n in neighbours:
                yield from comm.recv(tag=TAG_HALO)
            for event in pending:
                yield event
            done += 1
        yield from comm.barrier()
        self.completed[comm.rank] = done
        if comm.rank == 0:
            self.elapsed_s = proc.env.now - t0
        return done
