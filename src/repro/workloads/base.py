"""Workload base class and guest-memory placement helpers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import GuestError
from repro.units import GiB
from repro.vmm.guest_memory import PageClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import CommView
    from repro.mpi.runtime import MpiProcess
    from repro.vmm.vm import VirtualMachine

#: Guest physical space below this offset belongs to the OS/resident set.
_USER_BASE = 1 * GiB


def claim_region(vm: "VirtualMachine", nbytes: int) -> int:
    """Reserve a guest-physical region for one rank's working set.

    A simple bump allocator per VM: ranks sharing a VM get disjoint
    regions, so their buffers dirty disjoint pages.  Returns the offset.
    """
    cursor = getattr(vm, "_workload_cursor", _USER_BASE)
    if cursor + nbytes > vm.memory.size_bytes:
        raise GuestError(
            f"{vm.name}: workload regions exhausted guest RAM "
            f"({cursor + nbytes} > {vm.memory.size_bytes})"
        )
    vm._workload_cursor = cursor + nbytes  # type: ignore[attr-defined]
    return cursor


class Workload:
    """Base class: a distributed MPI program.

    Subclasses implement :meth:`rank_main` — an SPMD generator executed by
    every rank.  Instances are shared across ranks, so per-rank state must
    live in locals (or be keyed by rank).
    """

    name = "workload"

    def rank_main(self, proc: "MpiProcess", comm: "CommView"):
        """The per-rank program (generator)."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- shared helpers ---------------------------------------------------------

    @staticmethod
    def populate(
        proc: "MpiProcess",
        nbytes: int,
        page_class: PageClass = PageClass.DATA,
    ) -> int:
        """Materialize a rank's working set in guest memory.

        Marks the pages with ``page_class`` so migration sees the right
        compressibility (NPB arrays are real data; memtest is uniform).
        Returns the region offset.
        """
        offset = claim_region(proc.vm, nbytes)
        proc.vm.memory.write(offset, nbytes, page_class)
        return offset
