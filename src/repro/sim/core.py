"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, Optional, Union

from repro.errors import SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, NORMAL, Timeout
from repro.sim.process import Process


class Environment:
    """Execution environment for a single simulation run.

    Holds the simulation clock (:attr:`now`, in seconds) and the pending
    event queue, creates events/processes, and drives them with
    :meth:`run` / :meth:`step`.

    Parameters
    ----------
    initial_time:
        Starting value of the clock (default ``0.0``).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Events processed so far (monotonic; the scale campaign's
        #: events/sec throughput metric reads deltas of this).
        self.events_processed = 0

    # -- introspection --------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between steps)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- factories -------------------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier: an event that fires when all ``events`` succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Race: an event that fires when any of ``events`` succeeded."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------------

    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Queue ``event`` to be processed after ``delay`` seconds."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def step(self) -> None:
        """Process the single next event in the queue.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("no scheduled events left") from None
        self.events_processed += 1

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            raise SimulationError(f"event {event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: surface it instead of losing it.
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(repr(exc))  # pragma: no cover - defensive

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the event queue drains;
            * a number — run until the clock reaches that time;
            * an :class:`Event` — run until that event is processed, and
              return its value (re-raising its exception on failure).
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at < self._now:
                raise SimulationError(
                    f"until={at!r} lies in the past (now={self._now!r})"
                )
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, priority=NORMAL, delay=at - self._now)

        if until is not None:
            if until.callbacks is None:
                # Already processed.
                if until._ok:
                    return until._value
                raise until._value
            until.callbacks.append(_stop_simulation)

        try:
            while self._queue:
                self.step()
        except StopSimulation as stop:
            return stop.value

        if until is not None and until.callbacks is not None:
            raise SimulationError(
                f"run() finished with {until!r} still pending — deadlock?"
            )
        return None

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely; return the number of events processed.

        ``max_events`` guards against runaway loops in tests.
        """
        processed = 0
        while self._queue:
            self.step()
            processed += 1
            if processed > max_events:
                raise SimulationError(f"exceeded {max_events} events — runaway loop?")
        return processed


def _stop_simulation(event: Event) -> None:
    """Callback used by ``run(until=event)`` to unwind the run loop."""
    if event._ok:
        raise StopSimulation(event._value)
    exc = event._value
    if isinstance(exc, BaseException):
        event._defused = True
        raise exc
    raise StopSimulation(exc)  # pragma: no cover - defensive
