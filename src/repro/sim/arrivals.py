"""Open arrival processes: the request traffic of the scale campaign.

The fleet experiments so far were *closed*: a fixed batch of migration
requests is submitted at t=0 and the run ends when the batch drains.
Capacity questions — how many concurrent migrations a fabric sustains,
whether the solver keeps up over hours of churn — need an *open* system,
where requests keep arriving while earlier ones are still in flight.

An :class:`ArrivalProcess` is an iterator of :class:`Arrival` events
(time + request kind), consumed by the continuous-traffic orchestrator
(:mod:`repro.orchestrator.continuous`).  :class:`PoissonProcess` draws
exponential inter-arrival gaps from a named RNG stream (deterministic
per seed); :class:`TraceProcess` replays an explicit schedule, so a
recorded production trace — or a worst-case burst crafted by hand — runs
through the same machinery.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class Arrival:
    """One request arrival: when, and what kind of work."""

    time: float
    kind: str
    fields: dict = field(default_factory=dict)


class ArrivalProcess:
    """Base: an ordered, finite stream of :class:`Arrival` events."""

    def events(self) -> Iterator[Arrival]:
        raise NotImplementedError


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals with a categorical kind mix.

    Parameters
    ----------
    rng:
        A ``numpy`` generator — pass a named stream from
        :class:`~repro.sim.rng.RngRegistry` so arrival noise never
        perturbs placement or workload randomness.
    rate_per_s:
        Mean arrivals per simulated second (the open-system load knob).
    horizon_s:
        Arrivals strictly before this time; the stream then ends.
    mix:
        ``kind → weight`` (normalized internally); default all-``churn``.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        rate_per_s: float,
        horizon_s: float,
        mix: Optional[Dict[str, float]] = None,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        weights = dict(mix) if mix else {"churn": 1.0}
        total = float(sum(weights.values()))
        if total <= 0 or any(w < 0 for w in weights.values()):
            raise ValueError("mix weights must be non-negative with a positive sum")
        self.rng = rng
        self.rate_per_s = float(rate_per_s)
        self.horizon_s = float(horizon_s)
        self._kinds = list(weights)
        self._cdf = np.cumsum([w / total for w in weights.values()])

    def events(self) -> Iterator[Arrival]:
        mean_gap = 1.0 / self.rate_per_s
        t = 0.0
        while True:
            t += float(self.rng.exponential(mean_gap))
            if t >= self.horizon_s:
                return
            idx = int(np.searchsorted(self._cdf, self.rng.random(), side="right"))
            yield Arrival(t, self._kinds[min(idx, len(self._kinds) - 1)])


class TraceProcess(ArrivalProcess):
    """Replay an explicit arrival schedule.

    Accepts :class:`Arrival` objects or ``(time, kind)`` /
    ``(time, kind, fields)`` tuples; entries are sorted by time.
    """

    def __init__(
        self, entries: Iterable[Union[Arrival, Tuple[float, str], Tuple[float, str, dict]]]
    ) -> None:
        arrivals: List[Arrival] = []
        for entry in entries:
            if not isinstance(entry, Arrival):
                time, kind = entry[0], entry[1]
                fields = entry[2] if len(entry) > 2 else {}
                entry = Arrival(float(time), str(kind), dict(fields))
            if entry.time < 0:
                raise ValueError(f"arrival time must be non-negative, got {entry.time}")
            arrivals.append(entry)
        self._arrivals = sorted(arrivals, key=lambda a: a.time)

    def events(self) -> Iterator[Arrival]:
        return iter(self._arrivals)


def merge(*processes: ArrivalProcess) -> Iterator[Arrival]:
    """Merge several processes into one time-ordered stream.

    Lets a scenario overlay a steady Poisson background with a scripted
    incident burst without either knowing about the other.
    """
    return heapq.merge(*(p.events() for p in processes), key=lambda a: a.time)


__all__ = [
    "Arrival",
    "ArrivalProcess",
    "PoissonProcess",
    "TraceProcess",
    "merge",
]
