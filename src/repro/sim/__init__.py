"""Discrete-event simulation kernel.

A from-scratch, dependency-free event-driven kernel in the style of SimPy:
generator-based processes yield :class:`~repro.sim.events.Event` objects and
are resumed when those events trigger.  The rest of :mod:`repro` (hardware,
network fabrics, the VMM, the MPI runtime, SymVirt, Ninja migration) is built
entirely on this kernel, so simulated components interact through real
message passing and real waiting rather than closed-form math.

Quick example::

    from repro.sim import Environment

    env = Environment()

    def clock(env, name, period):
        while True:
            yield env.timeout(period)
            print(name, env.now)

    env.process(clock(env, "fast", 0.5))
    env.process(clock(env, "slow", 1.0))
    env.run(until=2.0)
"""

from repro.sim.core import Environment
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Interrupt, Process
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.fairshare import FairShare, FairShareTask, maxmin_rates
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "FairShare",
    "FairShareTask",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "RngRegistry",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "maxmin_rates",
]
