"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  Each ``yield`` hands the kernel
an :class:`~repro.sim.events.Event`; the process is resumed — with the
event's value sent into the generator, or its exception thrown — once that
event is processed.  A process is itself an event that triggers with the
generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import InterruptError, SimulationError
from repro.sim.events import Event, PENDING, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Interrupt(InterruptError):
    """Thrown inside a process that another process interrupted.

    ``cause`` carries whatever the interrupter passed to
    :meth:`Process.interrupt`.
    """


class _Initialize(Event):
    """Internal event that starts a process at the current simulation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, priority=URGENT)


class Process(Event):
    """An active simulation entity driven by a generator.

    Do not instantiate directly — use
    :meth:`Environment.process() <repro.sim.core.Environment.process>`.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self, env: "Environment", generator: Generator[Event, Any, Any], name: str = ""
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits on (None once finished).
        self._target: Optional[Event] = _Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process stops waiting on its current target and must handle (or
        propagate) the interrupt.  Interrupting a finished process is an
        error; interrupting yourself is an error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name}: cannot interrupt a finished process")
        if self.env.active_process is self:
            raise SimulationError(f"{self.name}: a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=URGENT)

    # -- kernel plumbing -----------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self._value is not PENDING:
            # The process already finished — e.g. it was interrupted while
            # waiting and its stale target fired later.  The dead generator
            # must not be re-driven (that would double-schedule this event);
            # absorb a stale failure so it cannot crash the run either.
            if not event._ok:
                event._defused = True
            return
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_target = self._generator.send(event._value)
                else:
                    # The event carries an exception; mark it defused since
                    # this process is taking responsibility for it.
                    event._defused = True
                    exc = event._value
                    if isinstance(exc, BaseException):
                        next_target = self._generator.throw(exc)
                    else:  # pragma: no cover - defensive
                        next_target = self._generator.throw(
                            SimulationError(repr(exc))
                        )
            except StopIteration as stop:
                # Process finished normally.
                self._target = None
                self._ok = True
                self._value = stop.value
                self.env.schedule(self)
                break
            except BaseException as err:
                # Process died; fail the process-event so waiters see it.
                self._target = None
                self._ok = False
                self._value = err
                self.env.schedule(self)
                break

            if not isinstance(next_target, Event):
                event = Event(self.env)
                event._ok = False
                event._value = SimulationError(
                    f"process {self.name!r} yielded non-event {next_target!r}"
                )
                continue

            if next_target.callbacks is not None:
                # Target still pending/queued: subscribe and go to sleep.
                next_target.wait(self._resume)
                self._target = next_target
                break

            # Target already processed: loop immediately with its outcome.
            event = next_target

        self.env._active_process = None

    def __repr__(self) -> str:  # pragma: no cover
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"
