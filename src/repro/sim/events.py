"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.  It
moves through three states:

* *pending* — created, not yet triggered;
* *triggered* — scheduled into the environment's queue with a value or an
  exception attached;
* *processed* — popped from the queue; its callbacks have run.

Composite events (:class:`AllOf`, :class:`AnyOf`) build barrier/race
semantics on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

#: Sentinel for "no value attached yet".
PENDING = object()

#: Scheduling priorities: urgent events (process resumption bookkeeping)
#: run before normal events at the same timestamp.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence that simulation processes can wait for.

    Parameters
    ----------
    env:
        The owning :class:`~repro.sim.core.Environment`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks invoked (with this event) when the event is processed.
        #: ``None`` once processed — further ``wait`` attempts are an error.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused = False

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """``True`` once a value (or exception) has been attached."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run (the event left the queue)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded, ``False`` if it failed."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with (or its exception)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering ----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A failed event propagates the exception into every waiting process.
        If nothing waits on it, the environment re-raises at the next step
        (unless :meth:`defused` is set), so failures cannot be silently lost.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the same outcome as another (triggered) event."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- plumbing ------------------------------------------------------------

    def defused(self) -> "Event":
        """Mark a failed event as handled so it won't crash the run."""
        self._defused = True
        return self

    def wait(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            raise SimulationError(f"cannot wait on processed event {self!r}")
        self.callbacks.append(callback)

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after a simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, delay=self.delay)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Timeout delay={self.delay!r}>"


class ConditionValue(dict):
    """Outcome of a composite event: maps each fired child event → value."""


class _Condition(Event):
    """Common machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: tuple[Event, ...] = tuple(events)
        self._count = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        # Check already-processed children immediately; wait on the rest.
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.wait(self._check)
        if not self.events and not self.triggered:
            self.succeed(ConditionValue())

    def _satisfied(self, count: int) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied(self._count):
            result = ConditionValue()
            for child in self.events:
                if child.triggered and child._ok:
                    result[child] = child._value
            self.succeed(result)


class AllOf(_Condition):
    """Triggers when *all* child events have succeeded (a barrier).

    Fails immediately if any child fails.
    """

    __slots__ = ()

    def _satisfied(self, count: int) -> bool:
        return count == len(self.events)


class AnyOf(_Condition):
    """Triggers when *any* child event has succeeded (a race)."""

    __slots__ = ()

    def _satisfied(self, count: int) -> bool:
        return count >= 1 or not self.events
