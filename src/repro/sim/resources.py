"""Shared resources for simulation processes.

* :class:`Resource` — a counted semaphore (e.g. PCI hotplug slot lock,
  QEMU monitor serialization).
* :class:`PriorityResource` — same, with priority-ordered waiters.
* :class:`Container` — continuous quantity (e.g. bytes of free host RAM).
* :class:`Store` — FIFO queue of Python objects (e.g. QMP command channel,
  the MPI out-of-band channel, hypercall mailboxes).

All acquire/release operations are events; processes ``yield`` them.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Request(Event):
    """Pending acquisition of one :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        if not self.triggered:
            self.resource._withdraw(self)


class Resource:
    """A resource with ``capacity`` identical slots and FIFO waiters."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._users: list[Request] = []
        self._waiters: list[Request] = []

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Request:
        """Ask for one slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a previously granted slot and wake the next waiter."""
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            # Releasing an ungranted request == cancelling it.
            request.cancel()

    # -- internals -------------------------------------------------------------

    def _do_request(self, request: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.append(request)
            request.succeed(request)
        else:
            self._waiters.append(request)

    def _withdraw(self, request: Request) -> None:
        if request in self._waiters:
            self._waiters.remove(request)

    def _grant_next(self) -> None:
        while self._waiters and len(self._users) < self.capacity:
            nxt = self._waiters.pop(0)
            self._users.append(nxt)
            nxt.succeed(nxt)


class PriorityRequest(Request):
    """A :class:`Request` carrying a priority (lower value = served first)."""

    __slots__ = ("priority", "_order")

    def __init__(self, resource: "PriorityResource", priority: int) -> None:
        self.priority = priority
        self._order = next(resource._counter)
        super().__init__(resource)

    def _sort_key(self) -> tuple[int, int]:
        return (self.priority, self._order)


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served in priority order."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        self._counter = count()
        super().__init__(env, capacity)

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.append(request)
            request.succeed(request)
        else:
            self._waiters.append(request)
            self._waiters.sort(key=lambda r: r._sort_key())  # type: ignore[attr-defined]


class Container:
    """A continuous quantity with blocking ``get`` and non-blocking ``put``.

    Used for modelling pools (free memory, link credits).  ``get`` requests
    are served FIFO as soon as enough quantity is available.
    """

    def __init__(
        self, env: "Environment", capacity: float = float("inf"), init: float = 0.0
    ) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not (0 <= init <= capacity):
            raise SimulationError("init must lie within [0, capacity]")
        self.env = env
        self.capacity = float(capacity)
        self._level = float(init)
        self._getters: list[tuple[float, Event]] = []

    @property
    def level(self) -> float:
        """Currently stored quantity."""
        return self._level

    def put(self, amount: float) -> None:
        """Add ``amount`` immediately (raises if it would exceed capacity)."""
        if amount < 0:
            raise SimulationError("amount must be non-negative")
        if self._level + amount > self.capacity + 1e-9:
            raise SimulationError("container overflow")
        self._level += amount
        self._serve()

    def get(self, amount: float) -> Event:
        """Return an event that fires once ``amount`` has been withdrawn."""
        if amount < 0:
            raise SimulationError("amount must be non-negative")
        if amount > self.capacity:
            raise SimulationError("requested more than capacity — would never fire")
        event = Event(self.env)
        self._getters.append((float(amount), event))
        self._serve()
        return event

    def _serve(self) -> None:
        while self._getters and self._getters[0][0] <= self._level + 1e-12:
            amount, event = self._getters.pop(0)
            self._level -= amount
            event.succeed(amount)


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`."""

    __slots__ = ("filter", "_store")

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]]) -> None:
        super().__init__(store.env)
        self.filter = filter
        self._store = store
        store._getters.append(self)
        store._serve()

    def cancel(self) -> None:
        """Withdraw an unfulfilled get (it will never steal an item)."""
        if not self.triggered and self in self._store._getters:
            self._store._getters.remove(self)


class Store:
    """FIFO queue of arbitrary items with blocking ``get``.

    ``get(filter=...)`` retrieves the first item matching a predicate,
    which is how tagged mailboxes (MPI message matching, QMP replies)
    are built.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Append an item (stores are unbounded by default)."""
        if len(self.items) >= self.capacity:
            raise SimulationError("store is full")
        self.items.append(item)
        self._serve()

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Return an event that fires with the next (matching) item."""
        return StoreGet(self, filter)

    def _serve(self) -> None:
        # Repeatedly try to satisfy waiting getters in arrival order.
        progress = True
        while progress:
            progress = False
            for getter in list(self._getters):
                if getter.triggered:
                    self._getters.remove(getter)
                    continue
                index = self._find(getter.filter)
                if index is not None:
                    item = self.items.pop(index)
                    self._getters.remove(getter)
                    getter.succeed(item)
                    progress = True

    def _find(self, filter: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if filter is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if filter(item):
                return i
        return None
