"""Deterministic, named random-number streams.

Every stochastic component (hotplug jitter, link-up jitter, migration noise)
draws from its own named stream so that results are reproducible and adding
randomness to one component never perturbs another.  Streams are derived
from a single root seed via SeedSequence spawning keyed by the stream name.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of independent, deterministic RNG streams.

    Parameters
    ----------
    seed:
        Root seed of the whole simulation run.  Two registries with the
        same seed produce identical streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # crc32 gives a stable 32-bit key per name across runs/platforms.
            key = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, key]))
            self._streams[name] = gen
        return gen

    def jitter(self, name: str, mean: float, rel_std: float = 0.05) -> float:
        """A positive, lightly-jittered sample around ``mean``.

        Used for timing constants measured "best of three" in the paper:
        the model keeps means deterministic but lets experiments opt into
        run-to-run variation.  ``rel_std = 0`` returns ``mean`` exactly.
        """
        if rel_std <= 0.0:
            return float(mean)
        sample = self.stream(name).normal(mean, rel_std * mean)
        return float(max(sample, 0.0))
