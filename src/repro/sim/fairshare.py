"""Max-min fair sharing of a single divisible capacity.

This is the work-horse behind two performance-critical models:

* the **host CPU scheduler** (:mod:`repro.hardware.cpu`): vCPU threads share
  physical cores, reproducing the CPU-overcommit contention the paper
  observes in the "2 hosts (TCP)" phase of Figure 8; and
* **single-link rate limiting** (per-NIC caps, the single-threaded QEMU
  migration CPU cap of ≈ 1.3 Gbps).

Multi-link network flows use the global max-min algorithm in
:mod:`repro.network.flows`, which reuses :func:`maxmin_rates`.

A :class:`FairShare` service accepts *tasks*, each with a fixed amount of
work (bytes, cpu-seconds, …), a weight, and an optional per-task rate cap.
At any instant the capacity is divided max-min fairly among active tasks;
the service wakes itself whenever the rate allocation changes and completes
tasks at exactly the right simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

_EPS = 1e-9
#: Minimum wakeup quantum: guards against sub-float-resolution timeouts
#: (``now + dt == now``) that would spin the event loop forever.
_MIN_DT = 1e-9


def maxmin_rates(
    capacity: float,
    weights: list[float],
    caps: Optional[list[float]] = None,
) -> list[float]:
    """Water-filling max-min allocation of ``capacity`` among tasks.

    Each task ``i`` gets at most ``caps[i]`` and otherwise a share
    proportional to ``weights[i]``.  Unused capacity from capped tasks is
    redistributed among the rest (progressive filling).

    Returns a list of rates summing to at most ``capacity``.
    """
    n = len(weights)
    if caps is None:
        caps = [float("inf")] * n
    if len(caps) != n:
        raise SimulationError("weights and caps must have equal length")
    if any(w <= 0 for w in weights):
        raise SimulationError("weights must be positive")

    rates = [0.0] * n
    active = list(range(n))
    remaining = float(capacity)
    while active:
        total_weight = sum(weights[i] for i in active)
        share = remaining / total_weight
        capped = [i for i in active if caps[i] < share * weights[i] - _EPS]
        if not capped:
            for i in active:
                rates[i] = share * weights[i]
            break
        for i in capped:
            rates[i] = caps[i]
            remaining -= caps[i]
            active.remove(i)
        remaining = max(remaining, 0.0)
    return rates


@dataclass
class FairShareTask:
    """One unit of work progressing through a :class:`FairShare` service."""

    amount: float
    weight: float = 1.0
    cap: float = float("inf")
    label: str = ""
    #: Event fired (with the task) on completion.
    done: Event = field(default=None, repr=False)  # type: ignore[assignment]
    remaining: float = field(default=0.0, repr=False)
    rate: float = field(default=0.0, repr=False)
    started_at: float = field(default=0.0, repr=False)
    finished_at: Optional[float] = field(default=None, repr=False)

    @property
    def finished(self) -> bool:
        return self.finished_at is not None


class FairShare:
    """A divisible capacity shared max-min fairly among concurrent tasks.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Total service rate (units of work per second).
    name:
        Label for debugging/tracing.
    """

    def __init__(self, env: "Environment", capacity: float, name: str = "") -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = float(capacity)
        self.name = name
        self._tasks: list[FairShareTask] = []
        self._wakeup: Optional[Event] = None
        self._last_update = env.now

    # -- public API ------------------------------------------------------------

    @property
    def active_tasks(self) -> int:
        """Number of tasks currently in service."""
        return len(self._tasks)

    @property
    def utilization(self) -> float:
        """Fraction of capacity currently allocated."""
        return sum(t.rate for t in self._tasks) / self.capacity

    def submit(
        self,
        amount: float,
        weight: float = 1.0,
        cap: float = float("inf"),
        label: str = "",
    ) -> FairShareTask:
        """Submit ``amount`` units of work; returns the task.

        ``task.done`` is an event firing when the work completes; processes
        typically ``yield task.done``.
        """
        if amount < 0:
            raise SimulationError("amount must be non-negative")
        task = FairShareTask(
            amount=float(amount), weight=float(weight), cap=float(cap), label=label
        )
        task.done = Event(self.env)
        task.remaining = float(amount)
        task.started_at = self.env.now
        self._advance_progress()
        if amount <= _EPS:
            task.finished_at = self.env.now
            task.done.succeed(task)
        else:
            self._tasks.append(task)
        self._reschedule()
        return task

    def cancel(self, task: FairShareTask) -> None:
        """Abort a task; its ``done`` event never fires."""
        if task in self._tasks:
            self._advance_progress()
            self._tasks.remove(task)
            self._reschedule()

    def set_capacity(self, capacity: float) -> None:
        """Change the total service rate (e.g. link renegotiation)."""
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self._advance_progress()
        self.capacity = float(capacity)
        self._reschedule()

    def current_rate(self, task: FairShareTask) -> float:
        """The task's currently allocated rate (0 if not in service)."""
        return task.rate if task in self._tasks else 0.0

    # -- internals ---------------------------------------------------------------

    def _advance_progress(self) -> None:
        """Account work done since the last rate change; complete tasks."""
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._tasks:
            return
        finished: list[FairShareTask] = []
        for task in self._tasks:
            task.remaining -= task.rate * elapsed
            if task.remaining <= _EPS * max(1.0, task.amount) or (
                task.rate > 0 and task.remaining <= task.rate * _MIN_DT
            ):
                task.remaining = 0.0
                finished.append(task)
        for task in finished:
            self._tasks.remove(task)
            task.finished_at = now
            task.done.succeed(task)

    def _reschedule(self) -> None:
        """Recompute rates and schedule a wakeup at the next completion."""
        if self._wakeup is not None and not self._wakeup.triggered:
            # Invalidate the stale wakeup; its callback checks identity.
            self._wakeup._defused = True
        self._wakeup = None
        if not self._tasks:
            return

        rates = maxmin_rates(
            self.capacity,
            [t.weight for t in self._tasks],
            [t.cap for t in self._tasks],
        )
        for task, rate in zip(self._tasks, rates):
            task.rate = rate

        next_dt = min(
            (t.remaining / t.rate for t in self._tasks if t.rate > _EPS),
            default=None,
        )
        if next_dt is None:
            raise SimulationError(
                f"FairShare {self.name!r}: tasks present but no progress possible"
            )
        wakeup = self.env.timeout(max(next_dt, _MIN_DT))
        self._wakeup = wakeup
        wakeup.callbacks.append(self._on_wakeup)

    def _on_wakeup(self, event: Event) -> None:
        if event is not self._wakeup:
            return  # stale wakeup from before a reschedule
        self._wakeup = None
        self._advance_progress()
        self._reschedule()
