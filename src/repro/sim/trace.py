"""Structured tracing of simulation events.

Components emit :class:`TraceRecord` entries ("vm3 paused", "BTL tcp
selected", "migration round 2: 1.2 GiB") through a shared :class:`Tracer`.
The experiment harnesses use traces to build the phase breakdowns the
paper's figures report (hotplug / link-up / migration / application).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Callable, Iterable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    event: str
    fields: dict = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:10.4f}] {self.category:<12} {self.event} {extras}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` entries, optionally filtered.

    Parameters
    ----------
    enabled:
        When ``False`` the tracer drops everything (zero overhead paths
        keep calling :meth:`emit`; it returns immediately).
    categories:
        If given, only these categories are recorded.
    sink:
        Optional callable invoked with each record (e.g. ``print``).

    Live consumers (the incident-response :class:`~repro.incident.telemetry.TelemetryBus`)
    attach via :meth:`subscribe` and receive each record as it is emitted,
    so they never re-scan ``records`` history.  Subscription dispatch is
    skipped entirely while no subscriber is registered, keeping the hot
    write path a bare list append.
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[set[str]] = None,
        sink: Optional[Callable[[TraceRecord], None]] = None,
    ) -> None:
        self.enabled = enabled
        self.categories = categories
        self.sink = sink
        self.records: list[TraceRecord] = []
        # (pattern, callback) pairs; patterns glob against "category.event".
        self._subscribers: list[tuple[str, Callable[[TraceRecord], None]]] = []
        # topic -> matching callbacks, amortizing the fnmatch scan across
        # the many records hot producers emit under one topic (per-round
        # migration stats, per-tick probe samples).  Invalidated whenever
        # the subscriber list changes.
        self._topic_cache: dict[str, tuple[Callable[[TraceRecord], None], ...]] = {}

    def subscribe(
        self, pattern: str, callback: Callable[[TraceRecord], None]
    ) -> Callable[[], None]:
        """Invoke ``callback`` for every future record matching ``pattern``.

        ``pattern`` is a glob matched against ``"{category}.{event}"``
        (e.g. ``"chaos.*"``, ``"migration.round"``, ``"*"``).  Only records
        emitted *after* subscribing are delivered — consumers that need
        history walk :attr:`records` once at attach time.  Returns an
        unsubscribe callable.
        """
        entry = (pattern, callback)
        self._subscribers.append(entry)
        self._topic_cache.clear()

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass  # already unsubscribed
            else:
                self._topic_cache.clear()

        return unsubscribe

    def emit(self, time: float, category: str, event: str, **fields: Any) -> None:
        """Record one entry (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        record = TraceRecord(time=time, category=category, event=event, fields=fields)
        self.records.append(record)
        if self._subscribers:
            self._dispatch(record)
        if self.sink is not None:
            self.sink(record)

    def emit_batch(
        self, time: float, category: str, entries: Iterable[tuple[str, dict]]
    ) -> int:
        """Record many same-category entries in one call; returns the count.

        Batching amortizes the per-call filter checks for hot producers
        (per-link telemetry probes sample every link each tick).  Each
        entry is an ``(event, fields)`` pair; subscribers still see every
        record individually.
        """
        if not self.enabled:
            return 0
        if self.categories is not None and category not in self.categories:
            return 0
        batch = [
            TraceRecord(time=time, category=category, event=event, fields=fields)
            for event, fields in entries
        ]
        self.records.extend(batch)
        if self._subscribers:
            for record in batch:
                self._dispatch(record)
        if self.sink is not None:
            for record in batch:
                self.sink(record)
        return len(batch)

    def _dispatch(self, record: TraceRecord) -> None:
        topic = f"{record.category}.{record.event}"
        callbacks = self._topic_cache.get(topic)
        if callbacks is None:
            # First record under this topic since the subscriber list last
            # changed: run the glob scan once and cache the match set.  A
            # callback that unsubscribes mid-dispatch clears the cache, and
            # the cached tuple is a snapshot, so dispatch stays safe.
            callbacks = tuple(
                callback
                for pattern, callback in self._subscribers
                if fnmatchcase(topic, pattern)
            )
            self._topic_cache[topic] = callbacks
        for callback in callbacks:
            callback(record)

    def select(
        self, category: Optional[str] = None, event: Optional[str] = None
    ) -> Iterator[TraceRecord]:
        """Iterate records matching the given category/event."""
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            yield record

    def first(self, category: str, event: str) -> Optional[TraceRecord]:
        """First matching record, or ``None``."""
        return next(self.select(category, event), None)

    def last(self, category: str, event: str) -> Optional[TraceRecord]:
        """Last matching record, or ``None``."""
        result = None
        for record in self.select(category, event):
            result = record
        return result

    def count(self, category: str, event: Optional[str] = None) -> int:
        """Number of records matching the given category (and event).

        Convenience for failure-path assertions, e.g.
        ``tracer.count("ninja", "retry")`` or
        ``tracer.count("ninja", "aborted")``.
        """
        return sum(1 for _ in self.select(category, event))

    def series(self, category: str, event: str, field: str) -> list:
        """Ordered values of one field across matching records.

        Convenience for per-round migration telemetry, e.g.
        ``tracer.series("migration", "round", "wire_bytes")`` or
        ``tracer.series("migration", "auto_converge", "throttle")`` —
        the raw material of the degraded-WAN figures.
        """
        return [
            record.fields[field]
            for record in self.select(category, event)
            if field in record.fields
        ]

    def span(self, category: str, start_event: str, end_event: str) -> Optional[float]:
        """Duration between the first ``start_event`` and first ``end_event``."""
        start = self.first(category, start_event)
        end = self.first(category, end_event)
        if start is None or end is None:
            return None
        return end.time - start.time

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()

    def iter_jsonl(self) -> Iterator[str]:
        """Yield each record as one JSON line (no trailing newline)."""
        import json

        for record in self.records:
            yield json.dumps(
                {
                    "time": record.time,
                    "category": record.category,
                    "event": record.event,
                    **{k: _jsonable(v) for k, v in record.fields.items()},
                },
                sort_keys=True,
            )

    def to_jsonl(self) -> str:
        """Serialize all records as JSON Lines (one record per line).

        Materializes the whole trace in memory; prefer :meth:`save` (which
        streams record-by-record to the file handle) for large traces.
        """
        return "\n".join(self.iter_jsonl())

    def save(self, path: str) -> int:
        """Write all records to ``path`` as JSON Lines; returns the count.

        Streams one line at a time so a multi-hour trace never needs a
        second full copy of itself as one giant string.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.iter_jsonl():
                fh.write(line)
                fh.write("\n")
        return len(self.records)

    def __len__(self) -> int:
        return len(self.records)


def _jsonable(value: Any) -> Any:
    """Best-effort JSON coercion for trace field values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)
