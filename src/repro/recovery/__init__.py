"""Controller crash-recovery: journal, reconciliation, failure detection.

Three pieces close the control plane's single point of failure:

* :mod:`repro.recovery.journal` — the write-ahead migration journal
  every Ninja sequence and fleet request appends to;
* :mod:`repro.recovery.recovery` — the :class:`RecoveryManager` that
  replays the journal after a controller crash, reconciles it against
  observed VMM/agent/HCA state, and rolls each in-flight sequence
  forward or back;
* :mod:`repro.recovery.failure_detector` — phi-accrual heartbeats
  feeding the :class:`~repro.core.fault_tolerance.HealthMonitor`, with
  fencing epochs (:mod:`repro.symvirt.fencing`) so a superseded
  controller cannot double-drive QMP.

``RecoveryManager`` and the detector classes are loaded lazily: the
journal must stay importable from :mod:`repro.core.ninja` without
dragging in the scheduler stack (which imports ninja right back).
"""

from repro.recovery.journal import (
    JournalRecord,
    MigrationJournal,
    MigrationSnapshot,
)

__all__ = [
    "JournalRecord",
    "MigrationJournal",
    "MigrationSnapshot",
    "RecoveryManager",
    "RecoveryReport",
    "HeartbeatMonitor",
    "PhiAccrualFailureDetector",
]


def __getattr__(name):
    if name in ("RecoveryManager", "RecoveryReport"):
        from repro.recovery import recovery

        return getattr(recovery, name)
    if name in ("HeartbeatMonitor", "PhiAccrualFailureDetector"):
        from repro.recovery import failure_detector

        return getattr(failure_detector, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
