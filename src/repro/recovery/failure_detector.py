"""Phi-accrual heartbeat failure detection feeding the health monitor.

Controllers and agents cannot distinguish "node is slow" from "node is
dead" with a boolean timeout — the phi-accrual detector (Hayashibara et
al., the detector behind Cassandra/Akka) replaces the boolean with a
*suspicion level*: ``phi(t)`` grows continuously with the time since the
last heartbeat, scaled by the node's own observed inter-arrival history.
Consumers pick thresholds, not timeouts:

* ``phi >= warn_phi``  → the node is *suspected*: the
  :class:`~repro.core.fault_tolerance.HealthMonitor` gets a WARNING and
  the fleet orchestrator starts evacuating its VMs;
* ``phi >= fail_phi``  → the node is *condemned*: FAILED is reported and
  reactive fault tolerance (checkpoint restore) takes over.

We use the exponential-interarrival variant: with mean heartbeat
interval ``m`` and ``Δt`` since the last beat, the probability the node
is still alive is ``exp(-Δt/m)``, giving

    phi(Δt) = -log10(P_later) = (Δt / m) · log10(e)

so ``phi = 8`` means "the chance this silence is benign is 1e-8".  A
resumed heartbeat drops phi to ~0 and the monitor reports OK again —
suspicion, unlike a tripped timeout, is reversible.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.core.fault_tolerance import Health, HealthMonitor

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster

#: log10(e): converts nats of suspicion into phi's base-10 scale.
_LOG10_E = math.log10(math.e)


class PhiAccrualFailureDetector:
    """Suspicion level for one heartbeat stream."""

    def __init__(
        self,
        window: int = 64,
        bootstrap_interval_s: float = 1.0,
        min_interval_s: float = 1e-3,
    ) -> None:
        #: Sliding window of observed inter-arrival times.
        self.intervals: Deque[float] = deque(maxlen=window)
        #: Assumed mean interval until enough beats arrive.
        self.bootstrap_interval_s = bootstrap_interval_s
        #: Floor on the mean (guards against a burst collapsing it to 0).
        self.min_interval_s = min_interval_s
        self.last_beat: Optional[float] = None
        self.beats = 0

    def heartbeat(self, now: float) -> None:
        if self.last_beat is not None:
            self.intervals.append(max(now - self.last_beat, 0.0))
        self.last_beat = now
        self.beats += 1

    @property
    def mean_interval_s(self) -> float:
        if not self.intervals:
            return self.bootstrap_interval_s
        return max(
            sum(self.intervals) / len(self.intervals), self.min_interval_s
        )

    def phi(self, now: float) -> float:
        """Current suspicion level (0 = just heard from it)."""
        if self.last_beat is None:
            return 0.0  # never expected a beat yet
        elapsed = max(now - self.last_beat, 0.0)
        return (elapsed / self.mean_interval_s) * _LOG10_E


class HeartbeatMonitor:
    """Cluster-wide heartbeat collection + phi evaluation loop.

    Wire-up: nodes (or their SymVirt agents) call :meth:`beat`; the
    monitor's scan process evaluates every detector each
    ``scan_period_s`` and pushes state *transitions* into the
    :class:`~repro.core.fault_tolerance.HealthMonitor` — which is where
    the fleet orchestrator's evacuation path already listens.
    """

    def __init__(
        self,
        cluster: "Cluster",
        health: Optional[HealthMonitor] = None,
        warn_phi: float = 8.0,
        fail_phi: float = 16.0,
        scan_period_s: float = 0.5,
        window: int = 64,
        bootstrap_interval_s: float = 1.0,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.health = health if health is not None else HealthMonitor(cluster)
        self.warn_phi = warn_phi
        self.fail_phi = fail_phi
        self.scan_period_s = scan_period_s
        self.detectors: Dict[str, PhiAccrualFailureDetector] = {
            name: PhiAccrualFailureDetector(
                window=window, bootstrap_interval_s=bootstrap_interval_s
            )
            for name in cluster.nodes
        }
        #: (time, node, phi, state) transitions, for tests/diagnostics.
        self.transitions: List[tuple] = []
        self._proc = None

    # -- input -------------------------------------------------------------------

    def beat(self, node: str) -> None:
        """Record one heartbeat from ``node``."""
        self.detectors[node].heartbeat(self.env.now)

    def emit_heartbeats(self, node: str, period_s: float, count: int = 10**9):
        """Generator: a node's heartbeat loop (run as a process; kill the
        process — or bound ``count`` — to simulate the node going silent).

        A host marked failed (:meth:`~repro.hardware.cluster.Cluster.fail_host`)
        goes silent at its next beat — nobody is left to run the agent."""
        for _ in range(count):
            if self.cluster.node(node).failed:
                return
            self.beat(node)
            yield self.env.timeout(period_s)

    # -- evaluation --------------------------------------------------------------

    def phi(self, node: str) -> float:
        return self.detectors[node].phi(self.env.now)

    def start(self):
        """Spawn the scan loop; returns the process."""
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.env.process(self._scan_loop(), name="heartbeat.scan")
        return self._proc

    def _scan_loop(self):
        while True:
            yield self.env.timeout(self.scan_period_s)
            self.scan()

    def scan(self) -> None:
        """One evaluation pass: report every state *transition*."""
        for node, detector in self.detectors.items():
            phi = detector.phi(self.env.now)
            if phi >= self.fail_phi:
                state = Health.FAILED
            elif phi >= self.warn_phi:
                state = Health.WARNING
            else:
                state = Health.OK
            if self.health.state.get(node) is state:
                continue
            # Never resurrect a FAILED node automatically — an operator
            # (or test) must clear it; flapping OK↔WARNING is fine.
            if self.health.state.get(node) is Health.FAILED and state is not Health.FAILED:
                continue
            self.transitions.append((self.env.now, node, round(phi, 3), state))
            self.health.report(
                node, state, reason=f"heartbeat phi={phi:.1f}"
            )
