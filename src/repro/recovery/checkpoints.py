"""Fleet-wide proactive checkpointing + checkpoint restore.

The paper's Section II-A survivability story — "using proactive and
reactive fault tolerant systems … we can restart VMs on an Ethernet
cluster from checkpointed VM images on an Infiniband cluster" — needs
three things the per-job :class:`~repro.core.checkpointing.ProactiveCheckpoint`
alone does not provide:

* a **schedule**: every registered fleet job is parked through the real
  SymVirt/CRCP path and snapshotted to NFS every ``period_s`` seconds,
  as *generations* (``vm.memsnap@g3``) so an in-progress write never
  clobbers the last good images;
* **durability accounting**: each generation is bracketed by
  ``checkpoint-intent`` / ``checkpoint-commit`` journal records, and
  only committed generations are restorable — the journal fold, not the
  NFS listing, decides what a restore may use.  This yields the RPO
  model: at failure time ``T`` the recovery point is the newest
  committed generation's *consistency point* (the SymVirt park instant),
  so ``RPO = T − consistency_at ≤ period + checkpoint duration``;
* **restore**: boot replacement VMs from a committed generation on spare
  hosts, rebuild an :class:`~repro.mpi.runtime.MpiJob` over them (CRS
  SELF *restart* phase), and hand them back to the fleet store.

The service is a controller like any other: it captures the fencing
epoch at construction, checks it before every commit, and an injected
:class:`~repro.errors.ControllerCrashError` at a ``checkpoint.*`` site
kills it mid-generation — leaving an intent without a commit, which a
successor service (and any restore) must treat as never having happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.checkpointing import CheckpointResult, ProactiveCheckpoint
from repro.errors import ControllerCrashError, IncidentError, ReproError
from repro.testbed import create_job
from repro.vmm.snapshot import restore_vm
from repro.vmm.vm import RunState

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.mpi.runtime import MpiJob
    from repro.orchestrator.state import FleetJob, FleetStateStore
    from repro.recovery.journal import MigrationJournal
    from repro.storage.nfs import NfsServer
    from repro.vmm.qemu import QemuProcess

#: Fault-injection sites bracketing the durability boundary of one
#: generation (crash-matrix hooks, like the Ninja phase sites).
CHECKPOINT_INTENT_SITE = "checkpoint.intent"
CHECKPOINT_COMMIT_SITE = "checkpoint.commit"


@dataclass
class RestoreOutcome:
    """What :meth:`FleetCheckpointService.restore_job` brought back."""

    job: "MpiJob"
    qemus: List["QemuProcess"] = field(default_factory=list)
    #: VM names adopted from a previous (crashed) restore attempt
    #: instead of booted fresh — the idempotency evidence.
    adopted: List[str] = field(default_factory=list)


class FleetCheckpointService:
    """Periodic cluster-wide checkpoint generations + restore.

    One instance per controller generation; a successor built over the
    same journal resumes generation numbering where the dead one
    stopped and never trusts an uncommitted generation.
    """

    def __init__(
        self,
        cluster: "Cluster",
        store: "FleetStateStore",
        nfs: "NfsServer",
        journal: "MigrationJournal",
        period_s: float = 12.0,
        keep_generations: int = 2,
        detach_tag: str = "vf0",
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.store = store
        self.nfs = nfs
        self.journal = journal
        self.period_s = period_s
        self.keep_generations = max(1, keep_generations)
        self.detach_tag = detach_tag
        self.checkpointer = ProactiveCheckpoint(cluster, nfs)
        #: Fencing epoch current at construction; checked before commits.
        self.epoch = cluster.fencing.current
        #: Last generation number used, resumed from the journal so a
        #: successor never reuses a dead controller's generation id.
        self.generation = self._max_journalled_generation()
        #: (time, job, reason) ticks skipped by the eligibility guards.
        self.skips: List[Tuple[float, str, str]] = []
        #: Committed results by (job, generation) — live-process cache;
        #: the journal remains the durable truth.
        self.committed: Dict[Tuple[str, int], CheckpointResult] = {}
        self.crashed = False
        self.crash_error = ""
        self._proc = None

    # -- schedule ----------------------------------------------------------------

    def start(self):
        """Spawn the periodic checkpoint loop; returns the process."""
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.env.process(self._run(), name="checkpoint.schedule")
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("checkpoint service stopped")
        self._proc = None

    def _run(self):
        from repro.sim.process import Interrupt

        try:
            while True:
                yield self.env.timeout(self.period_s)
                yield from self.checkpoint_fleet()
        except Interrupt:
            return
        except ControllerCrashError as err:
            # The checkpointing controller died mid-generation: the open
            # intent has no commit, so nothing will ever restore from it.
            self.crashed = True
            self.crash_error = str(err)
            self.cluster.trace("checkpoint", "controller_crash", error=str(err))

    def checkpoint_fleet(self):
        """One tick: checkpoint every eligible registered job (generator)."""
        for job_id in sorted(self.store.jobs):
            record = self.store.jobs[job_id]
            reason = self.ineligible_reason(record)
            if reason is not None:
                self.skips.append((self.env.now, job_id, reason))
                self.cluster.trace(
                    "checkpoint", "skipped", job=job_id, reason=reason,
                )
                continue
            try:
                yield from self.checkpoint_job(record)
            except ReproError as err:
                # A failed generation is a skipped generation: the job
                # keeps running, the next tick tries again, and the
                # journal shows intent-without-commit.
                self.skips.append((self.env.now, job_id, f"error:{err}"))
                self.cluster.trace(
                    "checkpoint", "failed", job=job_id, error=str(err),
                )

    # -- eligibility (satellite guard, shared with FaultToleranceManager) ---------

    def ineligible_reason(self, record: "FleetJob") -> Optional[str]:
        """Why ``record`` must not be checkpointed right now (None = go).

        A checkpoint parks *every* VM of the job through SymVirt, so it
        is exclusive with migration (the fleet ``busy`` flag and the
        per-VM in-flight stream), needs all ranks alive for the CRCP
        quiesce, and is meaningless once a VM is parked elsewhere, shut
        off, or stranded on a dead host.
        """
        if record.busy:
            return "job-busy"
        job = record.job
        if job._rank_processes and job.live_ranks < job.size:
            return "ranks-not-running"
        if not job._rank_processes:
            return "not-launched"
        for qemu in record.qemus:
            if qemu.current_migration is not None and qemu.current_migration.stats.in_flight:
                return "vm-mid-migration"
            if qemu.node.failed:
                return "host-failed"
            if qemu.vm.state is not RunState.RUNNING:
                return "vm-not-running"
            if qemu.vm.hypercall is not None and qemu.vm.hypercall.parked:
                return "vm-parked"
        return None

    # -- one generation ------------------------------------------------------------

    def checkpoint_job(self, record: "FleetJob"):
        """Write one committed generation for ``record`` (generator)."""
        self.generation += 1
        gen = self.generation
        suffix = f"@g{gen}"
        planned = sorted(f"{q.vm.name}.memsnap{suffix}" for q in record.qemus)
        self.journal.append(
            "checkpoint-intent",
            job=record.job_id,
            generation=gen,
            images=planned,
            epoch=self.epoch,
        )
        record.busy = True  # exclusive with migration, like a sequence
        try:
            yield from self.cluster.faults.perturb(CHECKPOINT_INTENT_SITE)
            result = yield from self.checkpointer.execute(
                record.job,
                record.qemus,
                detach_tag=self.detach_tag,
                image_suffix=suffix,
                extra_meta={"generation": gen, "job": record.job_id},
                # In-place tick: the physical port never left the subnet,
                # so skip the cross-host hot-plug SM sweep on re-attach.
                warm_reattach=True,
            )
            yield from self.cluster.faults.perturb(CHECKPOINT_COMMIT_SITE)
            # A fenced-out (superseded) service must not commit: its
            # images exist but the journal never blesses them.
            self.cluster.fencing.check(self.epoch, actor="checkpoint-service")
            self.journal.append(
                "checkpoint-commit",
                job=record.job_id,
                generation=gen,
                images=sorted(result.image_names),
                epoch=self.epoch,
                cr_round=record.job.cr_round,
                consistency_at=result.consistency_at,
                duration_s=result.total_s,
            )
        finally:
            record.busy = False
        self.committed[(record.job_id, gen)] = result
        self.prune(record.job_id)
        return result

    # -- RPO model -----------------------------------------------------------------

    def rpo_at(self, job_id: str, t: Optional[float] = None) -> Optional[float]:
        """Recomputation loss if ``job_id`` failed at time ``t`` (now).

        ``None`` when no committed generation exists yet (the job would
        be lost outright).  Otherwise the distance back to the newest
        committed generation's consistency point — bounded by
        ``period_s`` plus one checkpoint duration when the schedule is
        keeping up.
        """
        t = self.env.now if t is None else t
        newest = self.journal.last_committed_checkpoint(job_id, before=t)
        if newest is None:
            return None
        return max(t - float(newest.get("consistency_at", 0.0)), 0.0)

    # -- retention -----------------------------------------------------------------

    def prune(self, job_id: str) -> List[str]:
        """Delete images beyond the newest ``keep_generations`` commits.

        Only *committed* generations count toward retention; an
        uncommitted generation's images are garbage from a dead writer
        and are removed whenever an older committed one is.
        """
        commits = self.journal.committed_checkpoints(job_id)
        if len(commits) <= self.keep_generations:
            return []
        keep = {
            name
            for payload in commits[-self.keep_generations:]
            for name in payload.get("images", ())
        }
        doomed: List[str] = []
        for payload in commits[: -self.keep_generations]:
            for name in payload.get("images", ()):
                if name not in keep and self.nfs.has_image(name):
                    self.nfs.delete(name)
                    doomed.append(name)
        if doomed:
            self.cluster.trace(
                "checkpoint", "pruned", job=job_id, images=sorted(doomed),
            )
        return doomed

    # -- restore -------------------------------------------------------------------

    def restore_job(
        self,
        record: "FleetJob",
        generation: Dict[str, object],
        hosts: Sequence[str],
        name_tag: str = "",
    ):
        """Replace ``record``'s job with one restored from ``generation``.

        Generator; returns a :class:`RestoreOutcome`.  ``generation`` is
        a ``checkpoint-commit`` payload (the journal fold output) —
        passing anything else would violate the only-committed rule.
        Idempotent per VM: a replacement VM left RUNNING by a crashed
        earlier attempt (matched by its deterministic ``name_tag`` name)
        is *adopted*, not booted again, so resume never double-restores.
        """
        images = sorted(str(n) for n in generation.get("images", ()))
        if not images:
            raise IncidentError(
                f"{record.job_id}: committed generation lists no images"
            )
        if not hosts:
            raise IncidentError(f"{record.job_id}: no restore destinations")
        # The old mpirun is dead or dying: stop survivor ranks so they
        # don't sit in recvs waiting for peers that now live in images.
        record.job.terminate("superseded by checkpoint restore")
        for qemu in record.qemus:
            if qemu.vm.state is not RunState.SHUTOFF and not qemu.node.failed:
                qemu.shutdown()
        restored: List["QemuProcess"] = []
        adopted: List[str] = []
        for i, image_name in enumerate(images):
            meta = self.nfs.image(image_name).meta
            new_name = f"{meta.get('vm_name', image_name)}{name_tag}"
            existing = self._find_running_vm(new_name)
            if existing is not None:
                adopted.append(new_name)
                restored.append(existing)
                continue
            node = self.cluster.node(hosts[i % len(hosts)])
            qemu = yield from restore_vm(
                self.cluster, self.nfs, image_name, node, new_name=new_name
            )
            restored.append(qemu)
        restored.sort(key=lambda q: q.vm.name)
        job = create_job(
            self.cluster,
            restored,
            procs_per_vm=record.job.procs_per_vm,
            ft=record.job.ft,
        )
        yield from job.init()
        # CRS SELF restart phase: each restored rank re-enters through
        # the restart callback before the job relaunches from the
        # checkpoint epoch (recomputation since the park is lost).
        for proc in job.procs:
            yield from job.crs.restart(proc)
        self.cluster.trace(
            "checkpoint", "job_restored",
            job=record.job_id,
            generation=generation.get("generation"),
            vms=[q.vm.name for q in restored],
            adopted=sorted(adopted),
        )
        return RestoreOutcome(job=job, qemus=restored, adopted=adopted)

    # -- internals -----------------------------------------------------------------

    def _find_running_vm(self, name: str) -> Optional["QemuProcess"]:
        for node in self.cluster.nodes.values():
            for qemu in node.vms:
                if qemu.vm.name == name and qemu.vm.state is RunState.RUNNING:
                    return qemu
        return None

    def _max_journalled_generation(self) -> int:
        gens = [
            int(r.payload.get("generation", 0))  # type: ignore[arg-type]
            for r in self.journal.records
            if r.kind in ("checkpoint-intent", "checkpoint-commit")
        ]
        return max(gens, default=0)


__all__ = [
    "CHECKPOINT_COMMIT_SITE",
    "CHECKPOINT_INTENT_SITE",
    "FleetCheckpointService",
    "RestoreOutcome",
]
