"""Crash recovery: journal replay, reconciliation, roll-forward/roll-back.

After a controller crash the cluster holds *orphaned* state: guests may
be parked in ``symvirt_wait``, HCAs half-detached, QEMU precopy streams
still draining, reservations booked by a dead orchestrator.  The
:class:`RecoveryManager` turns the write-ahead journal plus the observed
world back into a safe one:

1. **Fence** — bump the cluster fencing epoch so any zombie controller
   command is rejected (:class:`~repro.errors.StaleEpochError`) instead
   of racing recovery's own QMP traffic.
2. **Replay** — fold the journal into per-migration snapshots; every
   sequence without a terminal record is recovery work.
3. **Reconcile** — the journal may *lag* the world (records are written
   after their guard), never lead it: recovery first waits out in-flight
   precopy streams and hotplug primitives, finishes interrupted ejects,
   then trusts observation over journal where they disagree (e.g. a
   ``resume`` intent plus zero parked VMs means the commit-point signal
   landed even if its record did not).
4. **Decide** — per sequence: *roll-forward* past the commit point
   (guests already run at their destinations; finish link-up, shed dead
   HCAs), *roll-back* before it (detach stray HCAs, migrate relocated
   VMs home, re-attach origin HCAs, release the owed SymVirt rounds).
5. **Re-seed** — moved-but-rolling-back VMs get their *origin* capacity
   reserved in the (fresh) :class:`~repro.orchestrator.state.FleetStateStore`
   while they travel home, so a resumed orchestrator cannot book the
   slot out from under them; the reservations are released once the VM
   lands.

Every action recovery takes is itself journalled (``recovery-begin`` /
``recovery-decision`` / ``rollback-action`` / ``recovered`` /
``recovery-complete``) — recovery of a crashed recovery replays cleanly
because the fold is idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import FleetError, ReproError
from repro.network.fabric import PortState
from repro.recovery.journal import MigrationJournal, MigrationSnapshot
from repro.symvirt.controller import Controller

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.orchestrator.state import FleetStateStore
    from repro.vmm.qemu import QemuProcess


@dataclass
class RecoveryDecision:
    """What recovery concluded (and did) for one orphaned sequence."""

    mid: str
    label: str
    #: "roll-forward" | "roll-back"
    decision: str
    #: Deepest phase whose intent was journalled.
    phase_reached: str
    #: Why the decision fell where it did.
    basis: str = ""
    actions: List[str] = field(default_factory=list)
    #: VM name → host after recovery.
    final_hosts: Dict[str, str] = field(default_factory=dict)
    #: VMs still parked after recovery (must be empty).
    parked_after: List[str] = field(default_factory=list)
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error and not self.parked_after


@dataclass
class RecoveryReport:
    """Outcome of one full recovery pass."""

    epoch: int
    reason: str = ""
    decisions: List[RecoveryDecision] = field(default_factory=list)
    #: Origin-capacity reservations created while VMs travelled home.
    reseeded: int = 0
    #: Fleet requests that should be resubmitted to a fresh orchestrator.
    resubmit: List[Dict[str, object]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(d.ok for d in self.decisions)

    @property
    def rolled_forward(self) -> List[RecoveryDecision]:
        return [d for d in self.decisions if d.decision == "roll-forward"]

    @property
    def rolled_back(self) -> List[RecoveryDecision]:
        return [d for d in self.decisions if d.decision == "roll-back"]


class RecoveryManager:
    """Replays the journal after a controller crash and repairs the world."""

    def __init__(
        self,
        cluster: "Cluster",
        journal: MigrationJournal,
        store: Optional["FleetStateStore"] = None,
        park_timeout_s: float = 120.0,
        linkup_timeout_s: float = 120.0,
        settle_poll_s: float = 0.05,
        settle_timeout_s: float = 3600.0,
        settle_quiet_polls: int = 3,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.journal = journal
        self.store = store
        #: Bound on waiting for coordinators to (re)park during rollback.
        #: A crash before the checkpoint request means nobody will ever
        #: park — recovery must not deadlock on a round that is not owed.
        self.park_timeout_s = park_timeout_s
        self.linkup_timeout_s = linkup_timeout_s
        self.settle_poll_s = settle_poll_s
        self.settle_timeout_s = settle_timeout_s
        self.settle_quiet_polls = settle_quiet_polls

    # -- world lookups ------------------------------------------------------------

    def _qemu(self, vm_name: str) -> Optional["QemuProcess"]:
        for node in self.cluster.nodes.values():
            for qemu in node.vms:
                if qemu.vm.name == vm_name:
                    return qemu
        return None

    def _qemus(self, snap: MigrationSnapshot) -> List["QemuProcess"]:
        qemus = []
        for name in snap.vms:
            qemu = self._qemu(name)
            if qemu is None:
                raise ReproError(f"recovery: VM {name!r} vanished from the cluster")
            qemus.append(qemu)
        return qemus

    # -- bounded waits -------------------------------------------------------------

    def _settle(self, qemus):
        """Wait until no orphaned migration stream or hotplug primitive
        is in flight (they are independent simulation processes and run
        to completion with the controller dead).

        "Quiet" must hold for several consecutive polls: a command the
        dead controller issued just before dying is still on the wire for
        one QMP round-trip and only then shows up as an active stream, so
        a single instantaneous check would reconcile against state that
        is about to change under us.
        """
        deadline = self.env.now + self.settle_timeout_s

        def busy() -> bool:
            for qemu in qemus:
                if qemu.hotplug.active_ops:
                    return True
                job = qemu.current_migration
                if job is not None and job.stats.in_flight:
                    return True
            return False

        quiet = 0
        while quiet < self.settle_quiet_polls:
            if self.env.now >= deadline:
                raise ReproError("recovery: in-flight work never settled")
            quiet = quiet + 1 if not busy() else 0
            yield self.env.timeout(self.settle_poll_s)

    def _bounded(self, events, timeout_s: float):
        """Wait for all ``events`` or the timeout; returns True if they
        all fired (generator)."""
        if not events:
            return True
        barrier = self.env.all_of(events)
        clock = self.env.timeout(timeout_s)
        yield self.env.any_of([barrier, clock])
        return bool(barrier.triggered)

    # -- the recovery pass -----------------------------------------------------------

    def recover(self, reason: str = "controller crash"):
        """Run the full pass (generator — drive from a simulation process)."""
        epoch = self.cluster.fencing.bump(reason)
        self.cluster.trace("recovery", "begin", epoch=epoch, reason=reason)
        self.journal.append("recovery-begin", epoch=epoch, reason=reason)
        report = RecoveryReport(epoch=epoch, reason=reason)
        for snap in self.journal.unfinished():
            decision = yield from self._recover_one(snap, report)
            report.decisions.append(decision)
        report.resubmit = self._resubmission_specs(report)
        self.journal.append(
            "recovery-complete",
            epoch=epoch,
            sequences=len(report.decisions),
            rolled_forward=len(report.rolled_forward),
            rolled_back=len(report.rolled_back),
            clean=report.clean,
        )
        self.cluster.trace(
            "recovery", "complete", epoch=epoch,
            sequences=len(report.decisions), clean=report.clean,
        )
        return report

    # -- per-sequence ---------------------------------------------------------------

    def _decide(self, snap: MigrationSnapshot, qemus) -> tuple:
        """(decision, basis) for one orphaned sequence.

        The journal's ``commit-point`` record is authoritative when
        present.  When absent, observation breaks the tie for the one
        uncertain window: a journalled ``resume`` intent plus *zero*
        parked VMs means the second signal was delivered before the
        crash — the guests run at their destinations and yanking them
        back would tear a running job, so recovery rolls forward.
        """
        if snap.committed:
            return "roll-forward", "commit-point record"
        if snap.postcopy_vms:
            # A postcopy switchover is a per-VM point of no return: the
            # origin holds no runnable image, so the move must stand even
            # though the sequence-level commit point was never reached.
            return "roll-forward", "postcopy-switchover record"
        if "resume" in snap.intents:
            parked = [q.vm.name for q in qemus if q.vm.hypercall.parked]
            if not parked:
                return "roll-forward", "resume intent + no VM parked"
        return "roll-back", "no commit-point record"

    def _recover_one(self, snap: MigrationSnapshot, report: RecoveryReport):
        qemus = self._qemus(snap)
        ctl = Controller(self.cluster, qemus)  # fresh epoch: passes fencing
        tag = snap.tag
        yield from self._settle(qemus)
        decision_kind, basis = self._decide(snap, qemus)
        decision = RecoveryDecision(
            mid=snap.mid,
            label=snap.label,
            decision=decision_kind,
            phase_reached=snap.phase_reached,
            basis=basis,
        )
        self.journal.append(
            "recovery-decision", mid=snap.mid, decision=decision_kind, basis=basis,
        )
        self.cluster.trace(
            "recovery", "decision", mid=snap.mid, decision=decision_kind,
            basis=basis, phase=snap.phase_reached,
        )
        try:
            if decision_kind == "roll-forward":
                yield from self._roll_forward(snap, ctl, decision)
            else:
                yield from self._roll_back(snap, ctl, decision, report)
        except ReproError as err:
            decision.error = str(err)
        ctl.close()
        decision.final_hosts = {q.vm.name: q.node.name for q in qemus}
        decision.parked_after = [
            q.vm.name for q in qemus if q.vm.hypercall.parked
        ]
        self.journal.append(
            "recovered", mid=snap.mid, decision=decision_kind,
            actions=list(decision.actions), error=decision.error,
        )
        return decision

    def _finish_partial_ejects(self, qemus, tag: str, decision: RecoveryDecision) -> None:
        """A seated function with no guest driver is an interrupted
        attach/detach; the safe terminal state is "ejected"."""
        for qemu in qemus:
            assignment = qemu.assignments.get(tag)
            kernel = qemu.vm.kernel
            if (
                assignment is not None
                and assignment.attached
                and kernel is not None
                and not kernel.has_driver(assignment.function)
            ):
                assignment.unseat()
                decision.actions.append(f"finish-eject:{qemu.vm.name}")
                self.cluster.trace(
                    "recovery", "finish_eject", vm=qemu.vm.name, tag=tag
                )

    # -- roll-forward ----------------------------------------------------------------

    def _roll_forward(self, snap: MigrationSnapshot, ctl: Controller, decision):
        """Past the commit point: the move stands.  Finish link-up (or
        shed HCAs whose port never trains) and close out the sequence."""
        tag = snap.tag
        self._finish_partial_ejects([a.qemu for a in ctl.agents], tag, decision)
        # The crash may have landed before the second signal's record but
        # after its delivery; if any VM is somehow still parked (crash at
        # resume intent resolved forward by journal), deliver the resume.
        parked = [a for a in ctl.agents if a.qemu.vm.hypercall.parked]
        if parked:
            yield ctl._parallel(a.signal() for a in parked)
            decision.actions.append("deliver-resume")
        waiting = []
        for agent in ctl.agents:
            name = agent.qemu.vm.name
            if snap.attach.get(name) and agent.has_attached(tag):
                port = agent.qemu.assignments[tag].function.port
                if port is not None and port.state is not PortState.ACTIVE:
                    waiting.append((agent, port))
        if waiting:
            trained = yield from self._bounded(
                [port.wait_active() for _, port in waiting], self.linkup_timeout_s
            )
            decision.actions.append("await-linkup")
            if not trained:
                dead = [
                    agent for agent, port in waiting
                    if port.state is not PortState.ACTIVE
                ]
                if dead:
                    yield ctl._parallel(a.device_detach(tag) for a in dead)
                    decision.actions.append("detach-dead-hca")
                    self.journal.append(
                        "rollback-action", mid=snap.mid, action="detach-dead-hca"
                    )

    # -- roll-back -------------------------------------------------------------------

    def _roll_back(self, snap: MigrationSnapshot, ctl: Controller, decision, report):
        """Before the commit point: undo, mirroring the compensation
        stack the dead controller would have unwound (LIFO)."""
        tag = snap.tag
        qemus = [a.qemu for a in ctl.agents]
        self._finish_partial_ejects(qemus, tag, decision)

        # detach-stray: HCAs this sequence attached away from home.
        stray = [
            a for a in ctl.agents
            if a.has_attached(tag)
            and a.qemu.node.name != snap.origin[a.qemu.vm.name]
        ]
        if stray:
            yield ctl._parallel(a.device_detach(tag) for a in stray)
            decision.actions.append("detach-stray")
            self.journal.append("rollback-action", mid=snap.mid, action="detach-stray")

        # migrate-back, with the origin slot re-seeded in the store so a
        # resumed orchestrator cannot book it while the VM travels home.
        # Defensive: VMs with a journalled postcopy switchover never
        # travel home even when the rest of the sequence rolls back.
        moved = {
            a.qemu.vm.name: snap.origin[a.qemu.vm.name]
            for a in ctl.agents
            if a.qemu.node.name != snap.origin[a.qemu.vm.name]
            and a.qemu.vm.name not in snap.postcopy_vms
        }
        if moved:
            if self.store is not None:
                for agent in ctl.agents:
                    name = agent.qemu.vm.name
                    if name not in moved:
                        continue
                    try:
                        self.store.reserve(
                            moved[name],
                            agent.qemu.vm.memory.size_bytes,
                            owner=snap.mid,
                        )
                        report.reseeded += 1
                    except FleetError as err:
                        # The slot is contested; the migrate-back is the
                        # physical claim and must proceed regardless.
                        self.cluster.trace(
                            "recovery", "reseed_failed", vm=name, error=str(err)
                        )
            yield from ctl.migration([], [], mapping=moved)
            decision.actions.append("migrate-back")
            self.journal.append("rollback-action", mid=snap.mid, action="migrate-back")

        # reattach-origin: restore the pre-transaction HCA state.
        pending = [
            a for a in ctl.agents
            if snap.had_attached.get(a.qemu.vm.name) and not a.has_attached(tag)
        ]
        if pending:
            yield ctl._parallel(a.device_attach(host="", tag=tag) for a in pending)
            decision.actions.append("reattach-origin")
            self.journal.append(
                "rollback-action", mid=snap.mid, action="reattach-origin"
            )

        # resume-guests: hand back the owed SymVirt rounds.  Bounded —
        # a crash before round A means the coordinators may still be on
        # their way to the park (wait for them), while a crash before
        # the checkpoint request means they never will be (time out and
        # owe nothing).
        owed = max(2 - snap.signals, 0)
        for _ in range(owed):
            parked = yield from self._bounded(
                [a.qemu.vm.hypercall.wait_parked() for a in ctl.agents],
                self.park_timeout_s,
            )
            if not parked:
                break
            yield ctl._parallel(a.signal() for a in ctl.agents)
            decision.actions.append("resume-guests")
        if owed:
            self.journal.append(
                "rollback-action", mid=snap.mid, action="resume-guests"
            )

        if self.store is not None and moved:
            self.store.release_owner(snap.mid)

    # -- fleet resubmission ------------------------------------------------------------

    def _resubmission_specs(self, report: RecoveryReport) -> List[Dict[str, object]]:
        """Journalled fleet requests that still need to run.

        A request whose last attempt rolled *forward* is effectively
        completed (the VMs moved); one that rolled back — or never
        started — is resubmitted to the successor orchestrator.
        """
        forward_labels = {d.label for d in report.rolled_forward}
        specs: List[Dict[str, object]] = []
        for state in self.journal.unfinished_requests():
            labels = [lbl for lbl in state.get("labels", []) if lbl]
            if labels and labels[-1] in forward_labels:
                continue
            specs.append(
                {
                    "job": state.get("job"),
                    "kind": state.get("request_kind", "fallback"),
                    "priority": state.get("priority", 0),
                    "dst_hosts": state.get("dst_hosts"),
                }
            )
        return specs
