"""Write-ahead migration journal: the durable trace of every sequence.

The SymVirt controller is a single point of failure — if it dies while a
job is parked and half-detached, nothing in the cluster remembers what
was in flight.  The journal fixes that: :class:`~repro.core.ninja.NinjaMigration`
and the fleet executor append a :class:`JournalRecord` *before* each
state-changing step (``intent``) and after it lands (``commit``), plus
records for the compensation stack, reservations, and terminal outcomes.
After a crash, :class:`~repro.recovery.recovery.RecoveryManager` folds the
surviving records into per-migration :class:`MigrationSnapshot` objects
and decides roll-forward or roll-back per sequence.

Record kinds
------------

``begin``
    A sequence opened: plan label, VM names, origin hosts, destination
    mapping, device tag, per-VM attach flags, pre-transaction HCA state.
``intent`` / ``commit``
    A phase is about to run / has finished (``phase`` field).  The
    ``resume`` intent marks the attempt to reach the commit point.
``signal``
    One SymVirt resume round was delivered (round A→B release).
``commit-point``
    The second signal landed: guests run at their destinations.  This is
    the roll-forward/roll-back watershed.
``postcopy-switchover``
    One or more VMs flipped execution to the destination with RAM still
    in flight (``vms`` field).  A *per-VM* commit point that precedes the
    sequence-level one: the origin no longer holds a runnable image, so
    recovery rolls these VMs forward and rollback never migrates them
    back.
``compensation``
    An undo action was pushed onto the compensation stack (``action``).
``rollback-action``
    An undo (or degrade) action executed.
``complete`` / ``aborted`` / ``recovered``
    Terminal outcomes; a sequence with none of these is *unfinished*
    and becomes recovery work after a crash.
``request`` / ``request-started`` / ``request-finished``
    Fleet-executor request lifecycle (used to resubmit queued work).
``reservation`` / ``release``
    FleetStateStore capacity claims keyed by request id and plan label.
``recovery-begin`` / ``recovery-decision`` / ``recovery-complete``
    The recovery pass documents itself in the same journal.
``incident-open`` / ``incident-resolved``
    An :class:`~repro.incident.correlator.Incident` entered / left
    remediation (class, links, hosts, jobs in the payload).
``incident-action-intent`` / ``incident-action-commit``
    One runbook step is about to run / has finished (``step`` index and
    ``action`` name).  A successor controller re-runs any step with an
    intent but no commit and skips committed ones — the incident
    analogue of the phase-level intent/commit discipline above.
``checkpoint-intent`` / ``checkpoint-commit``
    A proactive checkpoint generation is about to be written / is fully
    on stable storage (``job``, ``generation``, ``images``,
    ``consistency_at`` in the payload).  Only *committed* generations
    are restorable: an intent without a commit means the images may be
    partial and must never be restored from.
``restore-intent`` / ``restore-commit``
    A checkpoint restore (host-failure remediation) is about to boot
    replacement VMs / has replaced the job (``incident``, ``job``,
    ``generation``, ``hosts``, ``rpo_s``, ``rto_s``).  A successor
    controller skips jobs with a commit and re-runs ones with only an
    intent — restore actions are idempotent per (incident, job).

Persistence is JSON Lines: one record per line, appended with an
explicit flush so a crash loses at most the record being written —
matching the append-only discipline of real write-ahead logs.  The
in-memory record list is authoritative for same-process recovery;
:meth:`MigrationJournal.load` rebuilds a journal from disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, IO, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.plan import MigrationPlan
    from repro.sim.core import Environment

#: Phase names in sequence order (mirrors ``repro.core.ninja.PHASES``
#: with the explicit ``resume`` commit-point attempt inserted).
JOURNALLED_PHASES = (
    "coordination",
    "detach",
    "migration",
    "attach",
    "confirm",
    "resume",
    "linkup",
)

#: Record kinds that end a migration sequence.
TERMINAL_KINDS = ("complete", "aborted", "recovered")


@dataclass
class JournalRecord:
    """One append-only journal entry."""

    seq: int
    time: float
    kind: str
    #: Migration id (``label@N``); empty for request/reservation records.
    mid: str = ""
    phase: str = ""
    payload: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
        }
        if self.mid:
            record["mid"] = self.mid
        if self.phase:
            record["phase"] = self.phase
        if self.payload:
            record["payload"] = self.payload
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JournalRecord":
        return cls(
            seq=int(data["seq"]),
            time=float(data["time"]),
            kind=str(data["kind"]),
            mid=str(data.get("mid", "")),
            phase=str(data.get("phase", "")),
            payload=dict(data.get("payload", {})),  # type: ignore[arg-type]
        )


@dataclass
class MigrationSnapshot:
    """The fold of one migration's journal records (replay output)."""

    mid: str
    label: str = ""
    vms: List[str] = field(default_factory=list)
    #: VM name → host it lived on before the transaction.
    origin: Dict[str, str] = field(default_factory=dict)
    #: VM name → planned destination host.
    mapping: Dict[str, str] = field(default_factory=dict)
    tag: str = "vf0"
    #: VM name → whether the plan re-attaches an HCA at the destination.
    attach: Dict[str, bool] = field(default_factory=dict)
    #: VM name → whether an HCA was attached before the transaction.
    had_attached: Dict[str, bool] = field(default_factory=dict)
    request_checkpoint: bool = True
    intents: List[str] = field(default_factory=list)
    commits: List[str] = field(default_factory=list)
    #: SymVirt resume rounds journalled as delivered (0, 1, or 2).
    signals: int = 0
    #: True once the ``commit-point`` record exists.
    committed: bool = False
    #: VMs with a journalled postcopy switchover (per-VM commit points).
    postcopy_vms: List[str] = field(default_factory=list)
    #: Compensation-stack actions, in push order.
    compensations: List[str] = field(default_factory=list)
    rollback_actions: List[str] = field(default_factory=list)
    #: ``complete`` / ``aborted`` / ``recovered`` / None while in flight.
    terminal: Optional[str] = None

    @property
    def unfinished(self) -> bool:
        return self.terminal is None

    @property
    def phase_reached(self) -> str:
        """Deepest phase whose intent was journalled ('' before any)."""
        return self.intents[-1] if self.intents else ""

    def apply(self, record: JournalRecord) -> None:
        """Fold one record into the snapshot (idempotent per record)."""
        kind = record.kind
        if kind == "begin":
            p = record.payload
            self.label = str(p.get("label", ""))
            self.vms = list(p.get("vms", []))
            self.origin = dict(p.get("origin", {}))
            self.mapping = dict(p.get("mapping", {}))
            self.tag = str(p.get("tag", "vf0"))
            self.attach = dict(p.get("attach", {}))
            self.had_attached = dict(p.get("had_attached", {}))
            self.request_checkpoint = bool(p.get("request_checkpoint", True))
        elif kind == "intent":
            if record.phase not in self.intents:
                self.intents.append(record.phase)
        elif kind == "commit":
            if record.phase not in self.commits:
                self.commits.append(record.phase)
        elif kind == "signal":
            self.signals = max(self.signals, int(record.payload.get("round", 1)))
        elif kind == "commit-point":
            self.committed = True
            self.signals = max(self.signals, 2)
        elif kind == "postcopy-switchover":
            for vm in record.payload.get("vms", []):
                if vm not in self.postcopy_vms:
                    self.postcopy_vms.append(str(vm))
        elif kind == "compensation":
            self.compensations.append(str(record.payload.get("action", "")))
        elif kind == "rollback-action":
            self.rollback_actions.append(str(record.payload.get("action", "")))
        elif kind in TERMINAL_KINDS:
            # An abort whose *rollback itself* failed left the fleet in an
            # unreconciled state (split placement, parked guests): it
            # stays unfinished so recovery picks the sequence up, exactly
            # like a controller crash mid-rollback.
            if record.payload.get("rollback_failed"):
                self.terminal = None
            else:
                self.terminal = kind


class MigrationJournal:
    """Append-only journal, in memory and optionally on disk (JSONL)."""

    def __init__(
        self, path: Optional[str] = None, env: Optional["Environment"] = None
    ) -> None:
        self.path = path
        self.env = env
        self.records: List[JournalRecord] = []
        self._seq = 0
        self._mids = 0
        self._fh: Optional[IO[str]] = None
        if path is not None:
            self._fh = open(path, "a", encoding="utf-8")

    def bind(self, env: "Environment") -> "MigrationJournal":
        """Attach the simulation clock (idempotent)."""
        if self.env is None:
            self.env = env
        return self

    @property
    def now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- appending ----------------------------------------------------------------

    def append(
        self, kind: str, mid: str = "", phase: str = "", **payload: object
    ) -> JournalRecord:
        record = JournalRecord(
            seq=self._seq, time=self.now, kind=kind, mid=mid, phase=phase,
            payload=payload,
        )
        self._seq += 1
        self.records.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            self._fh.flush()
        return record

    def begin_sequence(
        self,
        plan: "MigrationPlan",
        origin: Dict[str, str],
        had_attached: Dict[str, bool],
        request_checkpoint: bool = True,
    ) -> str:
        """Open a migration sequence; returns its journal-unique mid."""
        self._mids += 1
        mid = f"{plan.label}@{self._mids}"
        self.append(
            "begin",
            mid=mid,
            label=plan.label,
            vms=[e.qemu.vm.name for e in plan.entries],
            origin=dict(origin),
            mapping=dict(plan.mapping),
            tag=plan.detach_tag,
            attach={e.qemu.vm.name: bool(e.attach_ib) for e in plan.entries},
            had_attached=dict(had_attached),
            request_checkpoint=request_checkpoint,
        )
        return mid

    # -- replay -------------------------------------------------------------------

    def migration_ids(self) -> List[str]:
        """Every mid with a ``begin`` record, in open order."""
        seen: List[str] = []
        for record in self.records:
            if record.kind == "begin" and record.mid not in seen:
                seen.append(record.mid)
        return seen

    def records_for(self, mid: str) -> List[JournalRecord]:
        return [r for r in self.records if r.mid == mid]

    def snapshot(self, mid: str) -> MigrationSnapshot:
        """Replay ``mid``'s records into a snapshot (pure fold: replaying
        twice — or replaying a journal rebuilt from disk — yields an
        identical snapshot)."""
        snap = MigrationSnapshot(mid=mid)
        for record in self.records_for(mid):
            snap.apply(record)
        return snap

    def snapshots(self) -> List[MigrationSnapshot]:
        return [self.snapshot(mid) for mid in self.migration_ids()]

    def unfinished(self) -> List[MigrationSnapshot]:
        """Sequences with no terminal record — the recovery work list."""
        return [s for s in self.snapshots() if s.unfinished]

    # -- fleet-request replay -----------------------------------------------------

    def request_records(self) -> Dict[int, Dict[str, object]]:
        """Request id → folded request state (for post-crash resubmission)."""
        folded: Dict[int, Dict[str, object]] = {}
        for record in self.records:
            rid = record.payload.get("request")
            if rid is None:
                continue
            rid = int(rid)  # type: ignore[arg-type]
            state = folded.setdefault(rid, {"request": rid, "labels": []})
            if record.kind == "request":
                state.update(
                    job=record.payload.get("job"),
                    request_kind=record.payload.get("request_kind"),
                    priority=record.payload.get("priority", 0),
                    dst_hosts=record.payload.get("dst_hosts"),
                )
            elif record.kind == "request-started":
                state["labels"].append(record.payload.get("label"))
            elif record.kind == "request-finished":
                state["finished"] = record.payload.get("status")
        return folded

    def unfinished_requests(self) -> List[Dict[str, object]]:
        """Submitted fleet requests with no terminal record."""
        return [
            state
            for state in self.request_records().values()
            if "finished" not in state and state.get("job") is not None
        ]

    def reservations_for(self, label: str) -> List[Dict[str, object]]:
        """Journalled, unreleased capacity claims for one plan label."""
        released = {
            int(r.payload["request"])  # type: ignore[arg-type]
            for r in self.records
            if r.kind == "release" and "request" in r.payload
        }
        return [
            dict(r.payload)
            for r in self.records
            if r.kind == "reservation"
            and r.payload.get("label") == label
            and int(r.payload.get("request", -1)) not in released  # type: ignore[arg-type]
        ]

    # -- checkpoint/restore folds ----------------------------------------------------

    def committed_checkpoints(
        self, job_id: str, before: Optional[float] = None
    ) -> List[Dict[str, object]]:
        """Every *committed* checkpoint generation for ``job_id``.

        A generation counts only when its ``checkpoint-commit`` record
        exists (an intent alone means the images may be partial).  With
        ``before`` set, generations committed after that time are
        excluded — they did not exist yet when the failure struck.
        Returned in commit order (oldest first); pure fold.
        """
        commits = []
        for record in self.records:
            if record.kind != "checkpoint-commit":
                continue
            if record.payload.get("job") != job_id:
                continue
            if before is not None and record.time > before:
                continue
            commits.append(dict(record.payload, committed_at=record.time))
        return commits

    def last_committed_checkpoint(
        self, job_id: str, before: Optional[float] = None
    ) -> Optional[Dict[str, object]]:
        """The newest restorable generation for ``job_id`` (or None).

        "Newest" by consistency point, which matches commit order since
        generations commit sequentially per job.  This is the RPO bound:
        a restore never resurrects state older than this generation.
        """
        commits = self.committed_checkpoints(job_id, before=before)
        if not commits:
            return None
        return max(commits, key=lambda p: float(p.get("consistency_at", 0.0)))

    def restore_commit_for(
        self, incident_id: int, job_id: str
    ) -> Optional[Dict[str, object]]:
        """The journalled restore outcome for (incident, job), if any.

        A successor controller checks this before re-restoring: a commit
        means the replacement job already exists and running the action
        again would double-restore.
        """
        for record in self.records:
            if (
                record.kind == "restore-commit"
                and record.payload.get("incident") == incident_id
                and record.payload.get("job") == job_id
            ):
                return dict(record.payload)
        return None

    def uncommitted_restores(self, incident_id: int) -> List[Dict[str, object]]:
        """Restore intents of this incident with no matching commit.

        Each is a restore a dead controller started: either nothing was
        booted (the successor re-runs it) or the replacement job is
        already up and only the commit record is missing (the successor
        reconciles it) — it must decide which by inspecting the fleet.
        """
        committed = {
            record.payload.get("job")
            for record in self.records
            if record.kind == "restore-commit"
            and record.payload.get("incident") == incident_id
        }
        out: List[Dict[str, object]] = []
        seen = set()
        for record in self.records:
            if (
                record.kind == "restore-intent"
                and record.payload.get("incident") == incident_id
                and record.payload.get("job") not in committed
                and record.payload.get("job") not in seen
            ):
                seen.add(record.payload.get("job"))
                out.append(dict(record.payload))
        return out

    # -- (de)serialisation ----------------------------------------------------------

    def dumps(self) -> str:
        return "\n".join(
            json.dumps(r.to_dict(), sort_keys=True) for r in self.records
        )

    @classmethod
    def loads(cls, text: str, env: Optional["Environment"] = None) -> "MigrationJournal":
        journal = cls(env=env)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            record = JournalRecord.from_dict(json.loads(line))
            journal.records.append(record)
            journal._seq = max(journal._seq, record.seq + 1)
            if record.kind == "begin" and "@" in record.mid:
                try:
                    journal._mids = max(journal._mids, int(record.mid.rsplit("@", 1)[1]))
                except ValueError:
                    pass
        return journal

    @classmethod
    def load(cls, path: str, env: Optional["Environment"] = None) -> "MigrationJournal":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read(), env=env)
