"""Exception hierarchy for the Ninja Migration reproduction.

Every layer raises a subclass of :class:`ReproError` so callers can catch
"anything from this library" without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


# --- simulation kernel -----------------------------------------------------


class SimulationError(ReproError):
    """Misuse of the discrete-event kernel (e.g. yielding a non-event)."""


class StopSimulation(Exception):
    """Internal control-flow exception used by ``Environment.run(until=...)``.

    Deliberately *not* a :class:`ReproError`: it must never be swallowed by
    user code catching library errors.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class InterruptError(ReproError):
    """Raised inside a process that has been interrupted by another process."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


# --- hardware / network ----------------------------------------------------


class HardwareError(ReproError):
    """Invalid hardware configuration or operation (e.g. no free PCI slot)."""


class NetworkError(ReproError):
    """Fabric-level failure (unreachable peer, link down, no route)."""


class LinkDownError(NetworkError):
    """A transfer was attempted over a port whose link is not ACTIVE."""


# --- VMM -------------------------------------------------------------------


class VmmError(ReproError):
    """QEMU/KVM model errors (bad state transitions, unknown devices)."""


class QmpError(VmmError):
    """A QMP command failed; mirrors QEMU's error-response path."""

    def __init__(self, cls: str, desc: str) -> None:
        super().__init__(f"{cls}: {desc}")
        self.cls = cls
        self.desc = desc


class MigrationError(VmmError):
    """Live migration failed or was attempted in an illegal state."""


class MigrationBlockedError(MigrationError):
    """Migration refused because a VMM-bypass device is still attached.

    This is the exact failure mode the paper works around: QEMU cannot
    migrate a VM that has a passthrough (VFIO) device assigned.
    """


class MigrationAbortedError(MigrationError):
    """A Ninja sequence aborted *and* its rollback could not restore a
    safe state — the only unrecoverable outcome of the transactional
    orchestrator.  Carries the phase that failed and the rollback step
    that broke.
    """

    def __init__(self, phase: str, detail: str, cause: "BaseException | None" = None) -> None:
        super().__init__(f"aborted in {phase!r}: {detail}")
        self.phase = phase
        self.detail = detail
        self.cause = cause


class HotplugError(VmmError):
    """PCI hotplug (ACPI) operation failed."""


# --- guest OS / MPI --------------------------------------------------------


class GuestError(ReproError):
    """Guest-kernel level failure (driver not bound, device missing)."""


class MpiError(ReproError):
    """MPI runtime error (aborts, unreachable peers, bad communicator)."""


class BtlUnreachableError(MpiError):
    """No BTL module can reach a peer — the job cannot communicate."""


class CheckpointError(MpiError):
    """CRCP/CRS checkpoint-restart protocol failure."""


# --- SymVirt / Ninja -------------------------------------------------------


class SymVirtError(ReproError):
    """SymVirt coordination failure (wait/signal mismatch, lost agent)."""


class StaleEpochError(SymVirtError):
    """A fenced-out controller issued a command.

    Every controller carries the fencing epoch current at its creation;
    crash recovery bumps the cluster-wide epoch before reconciling, so a
    zombie controller that wakes up after recovery started cannot
    double-drive QMP — its first command lands here instead.
    """

    def __init__(self, epoch: int, current: int, actor: str = "") -> None:
        who = f"{actor}: " if actor else ""
        super().__init__(
            f"{who}epoch {epoch} is stale (current epoch is {current}) — "
            f"a recovered controller has fenced this one out"
        )
        self.epoch = epoch
        self.current = current


class ControllerCrashError(Exception):
    """The migration controller died mid-sequence (simulated crash).

    Deliberately *not* a :class:`ReproError`: a crash is the one failure
    the transactional orchestrator must NOT handle — a dead controller
    runs no compensation, writes no journal records, and leaves the
    cluster exactly as it was at the moment of death.  Only the
    crash-recovery subsystem (:mod:`repro.recovery`) may observe it.
    """


class PhaseTimeoutError(ReproError):
    """A Ninja migration phase exceeded its per-phase timeout budget."""

    def __init__(self, phase: str, timeout_s: float) -> None:
        super().__init__(f"phase {phase!r} exceeded its {timeout_s:g} s timeout")
        self.phase = phase
        self.timeout_s = timeout_s


class FaultInjectionError(ReproError):
    """Default error raised by an armed :class:`~repro.core.faults.FaultInjector`
    site when no specific exception was configured.  Deliberately *not* one
    of the transient classes, so an injected fault aborts (and rolls back)
    instead of being absorbed by retry unless the test asks otherwise.
    """


class PlanError(ReproError):
    """A migration plan is invalid (capacity, device tags, host mapping)."""


class SchedulerError(ReproError):
    """Cloud-scheduler level failure (no feasible placement)."""


class FleetError(ReproError):
    """Fleet-orchestrator level failure (double-booked reservation,
    inconsistent request state, admission misuse)."""


class IncidentError(ReproError):
    """Incident-response failure (runbook action exhausted its retries,
    unknown incident class, malformed runbook)."""
