"""Experiment testbed helpers: provision VMs and MPI jobs in one call.

The paper's experiments all start from the same steady state: one (or
more) VM per host, VMM-bypass HCAs attached and **already linked up** on
the IB cluster, an MPI job running with ``ft-enable-cr`` and
``libsymvirt`` loaded.  These helpers build that state without charging
the 30 s boot-time link training to the experiment clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.errors import HardwareError
from repro.hardware.cluster import Cluster
from repro.mpi.ft import FtSettings
from repro.mpi.runtime import MpiJob
from repro.network.fabric import PortState
from repro.symvirt.coordinator import SymVirtCoordinator
from repro.units import GiB
from repro.vmm.qemu import QemuProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import PhysicalNode

#: The paper's VM shape: 8 vCPUs, 20 GB RAM on 48 GB hosts.
PAPER_VCPUS = 8
PAPER_VM_MEMORY = 20 * GiB


def attach_ib_warm(qemu: QemuProcess, tag: str = "vf0") -> None:
    """Assign + attach the host's VMM-bypass adapter, port already ACTIVE.

    Models a VM that booted with the device long ago: the experiment
    starts in "normal operation" (no pending link training), exactly how
    the paper's runs begin.  Works for InfiniBand HCAs and Myrinet NICs
    alike (the name keeps the paper's vocabulary).
    """
    node = qemu.node
    kernel = qemu.vm.kernel
    if kernel is None:
        raise HardwareError(f"{qemu.vm.name}: boot before warm attach")
    adapter = node.bypass_device()
    if adapter is None or adapter.port is None:
        raise HardwareError(f"{node.name}: no cabled VMM-bypass adapter for warm attach")
    if adapter.port.state is not PortState.ACTIVE:
        adapter.port.fabric.force_active(adapter.port)
    assignment = qemu.assign_device(adapter, tag)
    assignment.seat()
    kernel.device_added(assignment.function)


def provision_vms(
    cluster: Cluster,
    hosts: Sequence[str],
    vcpus: int = PAPER_VCPUS,
    memory_bytes: int = PAPER_VM_MEMORY,
    attach_ib: bool = True,
    name_prefix: str = "vm",
) -> List[QemuProcess]:
    """Boot one VM per listed host; warm-attach HCAs where cabled."""
    qemus: List[QemuProcess] = []
    for i, host in enumerate(hosts):
        node = cluster.node(host)
        qemu = QemuProcess(
            cluster, node, f"{name_prefix}{i + 1}", vcpus=vcpus, memory_bytes=memory_bytes
        )
        qemu.boot()
        if attach_ib and node.has_bypass_fabric:
            attach_ib_warm(qemu)
        qemus.append(qemu)
    return qemus


def create_job(
    cluster: Cluster,
    qemus: Sequence[QemuProcess],
    procs_per_vm: int = 1,
    ft: Optional[FtSettings] = None,
) -> MpiJob:
    """Create an ft-enabled MPI job with the SymVirt coordinator installed."""
    job = MpiJob(
        cluster,
        list(qemus),
        procs_per_vm=procs_per_vm,
        ft=ft if ft is not None else FtSettings.paper_settings(),
    )
    SymVirtCoordinator.install(job)
    return job
