"""Autonomous incident response: telemetry → alerts → incidents → runbooks.

The pipeline that lets the fleet survive a mid-drain fiber cut without
operator intervention:

* :mod:`repro.incident.telemetry` — streaming :class:`TelemetryBus` fed
  by a :class:`LinkTelemetryProbe` (fabric goodput/loss/latency/outage,
  heartbeat phi) and a :class:`TracerBridge` (live migration rounds);
* :mod:`repro.incident.detectors` — pluggable anomaly detectors with
  debounce + hysteresis emitting typed :class:`Alert` objects;
* :mod:`repro.incident.correlator` — folds concurrent alerts into one
  classified :class:`Incident` with a blast radius;
* :mod:`repro.incident.runbook` — declarative incident-class → action
  table executed with timeouts/retries and journaled for crash recovery;
* :mod:`repro.incident.manager` — the :class:`IncidentManager` wiring it
  all around a :class:`~repro.orchestrator.executor.FleetOrchestrator`;
* :mod:`repro.incident.scenario` — the end-to-end fiber-cut drill.
"""

from repro.incident.correlator import (
    LINK_ALERT_KINDS,
    OPEN,
    REMEDIATING,
    RESOLVED,
    Incident,
    IncidentCorrelator,
)
from repro.incident.detectors import (
    Alert,
    BandwidthCollapseDetector,
    Detector,
    LatencySpikeDetector,
    LossRateDetector,
    NonConvergenceDetector,
    OutageDetector,
    PhiSpikeDetector,
    default_detectors,
)
from repro.incident.manager import IncidentManager, incidents_from_journal
from repro.incident.runbook import DEFAULT_RUNBOOK, RunbookExecutor, RunbookStep
from repro.incident.telemetry import (
    HOST_PHI,
    LINK_GOODPUT,
    LINK_LATENCY,
    LINK_LOSS,
    LINK_UP,
    MIGRATION_ROUND,
    LinkTelemetryProbe,
    TelemetryBus,
    TelemetrySample,
    TracerBridge,
)

__all__ = [
    "Alert",
    "BandwidthCollapseDetector",
    "DEFAULT_RUNBOOK",
    "Detector",
    "HOST_PHI",
    "Incident",
    "IncidentCorrelator",
    "IncidentManager",
    "LINK_ALERT_KINDS",
    "LINK_GOODPUT",
    "LINK_LATENCY",
    "LINK_LOSS",
    "LINK_UP",
    "LatencySpikeDetector",
    "LinkTelemetryProbe",
    "LossRateDetector",
    "MIGRATION_ROUND",
    "NonConvergenceDetector",
    "OPEN",
    "OutageDetector",
    "PhiSpikeDetector",
    "REMEDIATING",
    "RESOLVED",
    "RunbookExecutor",
    "RunbookStep",
    "TelemetryBus",
    "TelemetrySample",
    "TracerBridge",
    "default_detectors",
    "incidents_from_journal",
]
