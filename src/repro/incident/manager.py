"""The self-healing controller: telemetry → alerts → incidents → runbooks.

:class:`IncidentManager` wires the whole pipeline around a
:class:`~repro.orchestrator.executor.FleetOrchestrator`:

* a :class:`~repro.incident.telemetry.LinkTelemetryProbe` samples the
  fabric (and heartbeat phi) onto a :class:`TelemetryBus`;
* a :class:`~repro.incident.telemetry.TracerBridge` republishes live
  migration-round trace records;
* every published sample runs through the detector set synchronously;
  alerts feed the :class:`~repro.incident.correlator.IncidentCorrelator`;
* each newly opened incident spawns a journaled
  :class:`~repro.incident.runbook.RunbookExecutor` remediation process
  (when ``autonomous`` — otherwise incidents are only diagnosed).

A :class:`~repro.errors.ControllerCrashError` escaping a remediation
marks the manager crashed; a successor manager constructed over the same
journal calls :meth:`resume` — committed runbook steps are skipped, the
interrupted one re-runs (all actions are idempotent), so the cluster
converges without double-executing remediation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ControllerCrashError, ReproError
from repro.incident.correlator import RESOLVED, Incident, IncidentCorrelator
from repro.incident.detectors import Alert, Detector, default_detectors
from repro.incident.runbook import RunbookExecutor, RunbookStep
from repro.incident.telemetry import (
    LinkTelemetryProbe,
    TelemetryBus,
    TelemetrySample,
    TracerBridge,
)
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.orchestrator.executor import FleetOrchestrator
    from repro.recovery.checkpoints import FleetCheckpointService
    from repro.recovery.failure_detector import HeartbeatMonitor
    from repro.recovery.journal import MigrationJournal


def incidents_from_journal(journal: "MigrationJournal") -> List[Incident]:
    """Rebuild unresolved incidents from ``incident-open`` records.

    Crash-recovery entry point: the successor controller has no live
    correlator state, only the journal.  Resolved incidents are skipped.
    """
    resolved = {
        r.payload.get("incident")
        for r in journal.records
        if r.kind == "incident-resolved"
    }
    rebuilt: List[Incident] = []
    for record in journal.records:
        if record.kind != "incident-open":
            continue
        incident_id = record.payload.get("incident")
        if incident_id in resolved:
            continue
        rebuilt.append(
            Incident(
                incident_id=int(incident_id),  # type: ignore[arg-type]
                opened_at=float(record.payload.get("opened_at", record.time)),  # type: ignore[arg-type]
                first_anomaly_at=float(
                    record.payload.get("first_anomaly_at", record.time)  # type: ignore[arg-type]
                ),
                klass=str(record.payload.get("klass", "")),
                severity="critical",
                links=set(record.payload.get("links", ())),  # type: ignore[arg-type]
                hosts=set(record.payload.get("hosts", ())),  # type: ignore[arg-type]
                suspect_hosts=set(
                    record.payload.get("suspect_hosts", ())  # type: ignore[arg-type]
                ),
                jobs=set(record.payload.get("jobs", ())),  # type: ignore[arg-type]
            )
        )
    return rebuilt


class IncidentManager:
    """Detection + diagnosis + (optionally) autonomous remediation."""

    def __init__(
        self,
        cluster: "Cluster",
        orchestrator: "FleetOrchestrator",
        heartbeats: Optional["HeartbeatMonitor"] = None,
        bus: Optional[TelemetryBus] = None,
        detectors: Optional[List[Detector]] = None,
        correlator: Optional[IncidentCorrelator] = None,
        runbook: Optional[Dict[str, Tuple[RunbookStep, ...]]] = None,
        probe_period_s: float = 0.25,
        autonomous: bool = True,
        checkpoints: Optional["FleetCheckpointService"] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.orchestrator = orchestrator
        self.autonomous = autonomous
        self.bus = bus if bus is not None else TelemetryBus()
        self.detectors = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.correlator = (
            correlator
            if correlator is not None
            else IncidentCorrelator(cluster, orchestrator)
        )
        self.executor = RunbookExecutor(
            cluster, orchestrator, journal=orchestrator.journal,
            runbook=runbook, checkpoints=checkpoints,
        )
        self.probe = LinkTelemetryProbe(
            cluster, self.bus, heartbeats=heartbeats, period_s=probe_period_s
        )
        self.bridge = (
            TracerBridge(cluster.tracer, self.bus)
            if cluster.tracer is not None
            else None
        )
        self.alerts: List[Alert] = []
        self.incidents: List[Incident] = []
        self.crashed = False
        self.crash_error = ""
        self.crash_event = Event(self.env)
        self._procs: List[object] = []
        self._unsub = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "IncidentManager":
        """Attach producers/detectors and begin sampling."""
        if self._unsub is None:
            self._unsub = self.bus.subscribe(self._on_sample)
        if self.bridge is not None:
            self.bridge.attach()
        self.probe.start()
        return self

    def stop(self) -> None:
        self.probe.stop()
        if self.bridge is not None:
            self.bridge.detach()
        if self._unsub is not None:
            self._unsub()
            self._unsub = None

    def resume(self) -> List[Incident]:
        """Re-execute unresolved incidents journaled by a dead manager.

        Committed runbook steps are skipped via the journal fold; the
        step that held the intent at crash time re-runs.  Returns the
        incidents taken over.
        """
        taken = incidents_from_journal(self.orchestrator.journal)
        for incident in taken:
            self.incidents.append(incident)
            # Register with the (fresh) correlator so ongoing alerts from
            # the same blast radius fold in instead of opening a duplicate.
            self.correlator.incidents.append(incident)
            self.cluster.trace(
                "incident", "resumed", incident=incident.incident_id,
                klass=incident.klass,
            )
            self._spawn_remediation(incident)
        return taken

    # -- pipeline ----------------------------------------------------------------

    def _on_sample(self, sample: TelemetrySample) -> None:
        for detector in self.detectors:
            alert = detector.observe(sample)
            if alert is None:
                continue
            self.alerts.append(alert)
            self.cluster.trace(
                "incident", "alert", detector=alert.detector, kind=alert.kind,
                key=alert.key, severity=alert.severity, value=alert.value,
            )
            incident = self.correlator.ingest(alert)
            if incident is None:
                continue
            self.incidents.append(incident)
            self.cluster.trace(
                "incident", "opened", incident=incident.incident_id,
                klass=incident.klass, severity=incident.severity,
                links=sorted(incident.links), jobs=sorted(incident.jobs),
                mttd_s=round(incident.mttd_s, 4),
            )
            if self.autonomous and not self.crashed:
                self._spawn_remediation(incident)

    def _spawn_remediation(self, incident: Incident) -> None:
        self._procs.append(
            self.env.process(
                self._remediate(incident),
                name=f"incident.remediate.{incident.incident_id}",
            )
        )

    def _remediate(self, incident: Incident):
        try:
            yield from self.executor.execute(incident)
        except ControllerCrashError as err:
            # The controller died mid-remediation.  Journal nothing more;
            # a successor manager resumes from the last committed step.
            self.crashed = True
            self.crash_error = str(err)
            self.cluster.trace(
                "incident", "controller_crash",
                incident=incident.incident_id, error=str(err),
            )
            if not self.crash_event.triggered:
                self.crash_event.succeed(self)
        except ReproError as err:
            # Remediation exhausted its runbook (no spare capacity, no
            # checkpoint to restore, ...).  The incident stays open for
            # operators; the controller itself must keep running.
            self.cluster.trace(
                "incident", "remediation_failed",
                incident=incident.incident_id, error=str(err),
            )

    # -- reporting ---------------------------------------------------------------

    @property
    def resolved_incidents(self) -> List[Incident]:
        return [i for i in self.incidents if i.status == RESOLVED]

    @property
    def settled(self) -> bool:
        """Every known incident fully remediated (or none ever opened)."""
        return all(i.status == RESOLVED for i in self.incidents)


__all__ = ["IncidentManager", "incidents_from_journal"]
