"""Pluggable anomaly detectors: telemetry samples in, typed alerts out.

Every detector is a per-series state machine built on the same episode
logic (:class:`Detector`): a *trigger* condition must persist for
``debounce_samples`` consecutive observations before one :class:`Alert`
fires, the episode then stays latched (no alert storm — one fiber cut is
one alert per affected series, optionally re-fired every
``refire_interval_s``), and a *clear* condition with hysteresis ends the
episode so a flapping metric cannot re-alert on every wobble.

Concrete detectors:

* :class:`OutageDetector` — link outage flag went dark;
* :class:`BandwidthCollapseDetector` — goodput fell below a fraction of
  its EWMA baseline (baseline only learns while healthy);
* :class:`LatencySpikeDetector` — latency exceeds a spike factor over
  its EWMA baseline plus an absolute guard band;
* :class:`LossRateDetector` — loss-rate change point (threshold with
  hysteresis clear);
* :class:`PhiSpikeDetector` — heartbeat suspicion crossed warn level;
* :class:`NonConvergenceDetector` — precopy rounds stopped shrinking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.incident.telemetry import (
    HOST_PHI,
    LINK_GOODPUT,
    LINK_LATENCY,
    LINK_LOSS,
    LINK_UP,
    MIGRATION_ROUND,
    TelemetrySample,
)

#: Verdicts a detector's ``evaluate`` may return.
TRIGGER = "trigger"
CLEAR = "clear"


@dataclass(frozen=True)
class Alert:
    """One typed anomaly report."""

    time: float
    detector: str
    #: "outage" | "bw-collapse" | "latency-spike" | "loss" | "phi-spike"
    #: | "non-convergence"
    kind: str
    #: Series key: the affected link, host, or VM.
    key: str
    severity: str  # "warning" | "critical"
    value: float
    #: When the anomalous condition was first observed (pre-debounce).
    first_anomaly_at: float
    fields: dict = field(default_factory=dict)


class _Episode:
    __slots__ = ("count", "active", "first", "last_fire")

    def __init__(self) -> None:
        self.count = 0
        self.active = False
        self.first: Optional[float] = None
        self.last_fire: Optional[float] = None


class Detector:
    """Debounce/latch/hysteresis episode machinery shared by detectors."""

    stream = ""
    kind = "anomaly"
    severity = "warning"

    def __init__(
        self,
        debounce_samples: int = 1,
        refire_interval_s: Optional[float] = None,
    ) -> None:
        if debounce_samples < 1:
            raise ValueError("debounce_samples must be >= 1")
        self.debounce_samples = debounce_samples
        self.refire_interval_s = refire_interval_s
        self._episodes: Dict[str, _Episode] = {}
        self.alerts_fired = 0

    @property
    def name(self) -> str:
        return type(self).__name__

    def evaluate(self, sample: TelemetrySample) -> Optional[str]:
        """Return :data:`TRIGGER`, :data:`CLEAR`, or ``None`` (no opinion)."""
        raise NotImplementedError

    def observe(self, sample: TelemetrySample) -> Optional[Alert]:
        """Feed one sample; returns an alert when an episode fires."""
        if sample.stream != self.stream:
            return None
        verdict = self.evaluate(sample)
        episode = self._episodes.get(sample.key)
        if episode is None:
            episode = self._episodes[sample.key] = _Episode()
        if verdict == TRIGGER:
            episode.count += 1
            if episode.first is None:
                episode.first = sample.time
            if not episode.active:
                if episode.count >= self.debounce_samples:
                    episode.active = True
                    episode.last_fire = sample.time
                    return self._alert(sample, episode)
            elif (
                self.refire_interval_s is not None
                and episode.last_fire is not None
                and sample.time - episode.last_fire >= self.refire_interval_s
            ):
                episode.last_fire = sample.time
                return self._alert(sample, episode)
        elif verdict == CLEAR:
            episode.count = 0
            episode.active = False
            episode.first = None
        return None

    def active_keys(self) -> List[str]:
        return sorted(k for k, e in self._episodes.items() if e.active)

    def _alert(self, sample: TelemetrySample, episode: _Episode) -> Alert:
        self.alerts_fired += 1
        return Alert(
            time=sample.time,
            detector=self.name,
            kind=self.kind,
            key=sample.key,
            severity=self.severity,
            value=sample.value,
            first_anomaly_at=episode.first if episode.first is not None else sample.time,
            fields=dict(sample.fields),
        )


class OutageDetector(Detector):
    """The link outage flag went dark (no debounce: an outage is binary)."""

    stream = LINK_UP
    kind = "outage"
    severity = "critical"

    def evaluate(self, sample: TelemetrySample) -> Optional[str]:
        return TRIGGER if sample.value < 0.5 else CLEAR


class _EwmaBaseline:
    """EWMA that only learns while the series is healthy."""

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self.mean: Optional[float] = None
        self.samples = 0

    def update(self, value: float) -> None:
        self.mean = (
            value
            if self.mean is None
            else self.alpha * value + (1.0 - self.alpha) * self.mean
        )
        self.samples += 1


class BandwidthCollapseDetector(Detector):
    """Goodput collapsed below ``collapse_ratio`` of its EWMA baseline.

    The baseline learns only from healthy samples, so a sustained
    collapse cannot drag it down and self-clear the episode; the episode
    clears when goodput recovers to ``restore_ratio`` of the baseline.
    """

    stream = LINK_GOODPUT
    kind = "bw-collapse"

    def __init__(
        self,
        collapse_ratio: float = 0.5,
        restore_ratio: float = 0.9,
        alpha: float = 0.3,
        warmup_samples: int = 4,
        debounce_samples: int = 2,
        refire_interval_s: Optional[float] = None,
    ) -> None:
        super().__init__(debounce_samples, refire_interval_s)
        self.collapse_ratio = collapse_ratio
        self.restore_ratio = restore_ratio
        self.alpha = alpha
        self.warmup_samples = warmup_samples
        self._baselines: Dict[str, _EwmaBaseline] = {}

    def baseline(self, key: str) -> Optional[float]:
        base = self._baselines.get(key)
        return base.mean if base is not None else None

    def evaluate(self, sample: TelemetrySample) -> Optional[str]:
        base = self._baselines.get(sample.key)
        if base is None:
            base = self._baselines[sample.key] = _EwmaBaseline(self.alpha)
        if base.samples < self.warmup_samples or base.mean is None:
            base.update(sample.value)
            return None
        if sample.value < self.collapse_ratio * base.mean:
            return TRIGGER
        if sample.value >= self.restore_ratio * base.mean:
            base.update(sample.value)
            return CLEAR
        # Grey zone: neither collapsed nor recovered; keep the baseline
        # frozen so a slow sag eventually crosses the collapse line.
        return None


class LatencySpikeDetector(Detector):
    """Latency exceeds ``spike_factor`` x EWMA baseline (+ guard band)."""

    stream = LINK_LATENCY
    kind = "latency-spike"

    def __init__(
        self,
        spike_factor: float = 3.0,
        min_extra_s: float = 5e-3,
        alpha: float = 0.3,
        warmup_samples: int = 4,
        debounce_samples: int = 2,
        refire_interval_s: Optional[float] = None,
    ) -> None:
        super().__init__(debounce_samples, refire_interval_s)
        self.spike_factor = spike_factor
        self.min_extra_s = min_extra_s
        self.alpha = alpha
        self.warmup_samples = warmup_samples
        self._baselines: Dict[str, _EwmaBaseline] = {}

    def evaluate(self, sample: TelemetrySample) -> Optional[str]:
        base = self._baselines.get(sample.key)
        if base is None:
            base = self._baselines[sample.key] = _EwmaBaseline(self.alpha)
        if base.samples < self.warmup_samples or base.mean is None:
            base.update(sample.value)
            return None
        threshold = max(
            self.spike_factor * base.mean, base.mean + self.min_extra_s
        )
        if sample.value > threshold:
            return TRIGGER
        base.update(sample.value)
        return CLEAR


class LossRateDetector(Detector):
    """Loss-rate change point: threshold trigger, hysteresis clear."""

    stream = LINK_LOSS
    kind = "loss"

    def __init__(
        self,
        trigger_loss: float = 0.05,
        clear_loss: float = 0.01,
        debounce_samples: int = 2,
        refire_interval_s: Optional[float] = None,
    ) -> None:
        super().__init__(debounce_samples, refire_interval_s)
        self.trigger_loss = trigger_loss
        self.clear_loss = clear_loss

    def evaluate(self, sample: TelemetrySample) -> Optional[str]:
        if sample.value >= self.trigger_loss:
            return TRIGGER
        if sample.value < self.clear_loss:
            return CLEAR
        return None  # hysteresis band


class PhiSpikeDetector(Detector):
    """Heartbeat suspicion (phi) crossed the warn threshold."""

    stream = HOST_PHI
    kind = "phi-spike"
    severity = "critical"

    def __init__(
        self,
        warn_phi: float = 8.0,
        clear_phi: float = 1.0,
        debounce_samples: int = 1,
        refire_interval_s: Optional[float] = None,
    ) -> None:
        super().__init__(debounce_samples, refire_interval_s)
        self.warn_phi = warn_phi
        self.clear_phi = clear_phi

    def evaluate(self, sample: TelemetrySample) -> Optional[str]:
        if sample.value >= self.warn_phi:
            return TRIGGER
        if sample.value < self.clear_phi:
            return CLEAR
        return None


class NonConvergenceDetector(Detector):
    """Precopy is not converging: rounds stopped shrinking.

    Keyed by VM; triggers after ``stall_rounds`` consecutive rounds whose
    wire bytes failed to shrink by at least ``min_shrink`` relative to
    the previous round.  A restarting migration (round index reset)
    clears the history.
    """

    stream = MIGRATION_ROUND
    kind = "non-convergence"

    def __init__(
        self,
        stall_rounds: int = 3,
        min_shrink: float = 0.05,
        refire_interval_s: Optional[float] = None,
    ) -> None:
        super().__init__(debounce_samples=stall_rounds,
                         refire_interval_s=refire_interval_s)
        self.min_shrink = min_shrink
        self._last: Dict[str, tuple] = {}  # key -> (index, wire_bytes)

    def evaluate(self, sample: TelemetrySample) -> Optional[str]:
        index = sample.fields.get("index")
        prev = self._last.get(sample.key)
        self._last[sample.key] = (index, sample.value)
        if prev is None:
            return None
        prev_index, prev_bytes = prev
        if (
            index is not None
            and prev_index is not None
            and index <= prev_index
        ):
            # New migration attempt for this VM: forget the old stream.
            return CLEAR
        if prev_bytes <= 0:
            return None
        if sample.value > (1.0 - self.min_shrink) * prev_bytes:
            return TRIGGER
        return CLEAR


def default_detectors() -> List[Detector]:
    """The standard production detector set."""
    return [
        OutageDetector(),
        BandwidthCollapseDetector(),
        LatencySpikeDetector(),
        LossRateDetector(),
        PhiSpikeDetector(),
        NonConvergenceDetector(),
    ]


__all__ = [
    "Alert",
    "Detector",
    "OutageDetector",
    "BandwidthCollapseDetector",
    "LatencySpikeDetector",
    "LossRateDetector",
    "PhiSpikeDetector",
    "NonConvergenceDetector",
    "default_detectors",
    "TRIGGER",
    "CLEAR",
]
