"""Alert correlation: many concurrent alerts, one classified incident.

A fiber cut does not produce one signal — it produces an outage alert on
the cut link, goodput collapse on every flow that crossed it, phi noise
if a heartbeat path shared the fiber, and non-convergence from the
migrations it starved.  The correlator folds alerts arriving within a
``window_s`` correlation window into a single open :class:`Incident`,
classifies it, and computes the blast radius (links, hosts, in-flight
fleet requests) the runbook needs.

Classification (first match wins):

``host-failure``
    phi-spike alerts with no link outage explaining them.
``fiber-cut``
    Any link outage alert (a dark link is a cut, wherever it is).
``degraded-wan``
    Bandwidth/latency/loss degradation confined to backbone links
    (matching ``backbone_patterns``, default ``wan:*``).
``congestion``
    Everything else — degradation on access links with no outage.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro.incident.detectors import Alert

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.orchestrator.executor import FleetOrchestrator

_incident_ids = count(1)

#: Alert kinds whose key names a link.
LINK_ALERT_KINDS = ("outage", "bw-collapse", "latency-spike", "loss")

OPEN = "open"
REMEDIATING = "remediating"
RESOLVED = "resolved"


@dataclass
class Incident:
    """One diagnosed event with blast radius and lifecycle timestamps."""

    incident_id: int
    opened_at: float
    first_anomaly_at: float
    klass: str  # "fiber-cut" | "host-failure" | "congestion" | "degraded-wan"
    severity: str
    alerts: List[Alert] = field(default_factory=list)
    links: Set[str] = field(default_factory=set)
    hosts: Set[str] = field(default_factory=set)
    #: Hosts named by phi-spike alerts — the *suspects* themselves, as
    #: opposed to ``hosts`` which also accumulates blast-radius hosts
    #: (every host of every affected job).  Remediation targets suspects;
    #: folding decisions for phi alerts match against suspects only, so a
    #: host inside another incident's blast radius can still open its own
    #: host-failure incident.
    suspect_hosts: Set[str] = field(default_factory=set)
    jobs: Set[str] = field(default_factory=set)
    request_ids: Set[int] = field(default_factory=set)
    status: str = OPEN
    #: Set when the runbook's service-restoring action completed.
    remediated_at: Optional[float] = None
    resolved_at: Optional[float] = None
    #: Runbook actions executed (appended by the executor).
    actions: List[str] = field(default_factory=list)

    @property
    def last_alert_at(self) -> float:
        return self.alerts[-1].time if self.alerts else self.opened_at

    @property
    def mttd_s(self) -> float:
        """Time from first anomalous observation to incident opening."""
        return max(self.opened_at - self.first_anomaly_at, 0.0)

    @property
    def mttr_s(self) -> Optional[float]:
        """Time from first anomaly to service restoration (if reached)."""
        if self.remediated_at is None:
            return None
        return max(self.remediated_at - self.first_anomaly_at, 0.0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "incident": self.incident_id,
            "class": self.klass,
            "severity": self.severity,
            "opened_at": self.opened_at,
            "first_anomaly_at": self.first_anomaly_at,
            "status": self.status,
            "mttd_s": round(self.mttd_s, 4),
            "mttr_s": round(self.mttr_s, 4) if self.mttr_s is not None else None,
            "links": sorted(self.links),
            "hosts": sorted(self.hosts),
            "suspect_hosts": sorted(self.suspect_hosts),
            "jobs": sorted(self.jobs),
            "alerts": len(self.alerts),
            "actions": list(self.actions),
        }


class IncidentCorrelator:
    """Folds alerts into open incidents; emits newly opened ones."""

    def __init__(
        self,
        cluster: "Cluster",
        orchestrator: Optional["FleetOrchestrator"] = None,
        window_s: float = 2.0,
        backbone_patterns: Sequence[str] = ("wan:*",),
    ) -> None:
        self.cluster = cluster
        self.orchestrator = orchestrator
        self.window_s = window_s
        self.backbone_patterns = tuple(backbone_patterns)
        self.incidents: List[Incident] = []

    # -- ingestion ---------------------------------------------------------------

    def ingest(self, alert: Alert) -> Optional[Incident]:
        """Fold ``alert`` in; returns a *new* incident if one opened."""
        incident = self._fold_target(alert)
        if incident is not None:
            self._absorb(incident, alert)
            return None
        incident = Incident(
            incident_id=next(_incident_ids),
            opened_at=alert.time,
            first_anomaly_at=alert.first_anomaly_at,
            klass="",
            severity=alert.severity,
        )
        self._absorb(incident, alert)
        self.incidents.append(incident)
        return incident

    def open_incidents(self) -> List[Incident]:
        return [i for i in self.incidents if i.status != RESOLVED]

    # -- internals ---------------------------------------------------------------

    def _fold_target(self, alert: Alert) -> Optional[Incident]:
        for incident in reversed(self.incidents):
            if incident.status == RESOLVED:
                continue
            if alert.time - incident.last_alert_at <= self.window_s:
                return incident
            if incident.status == REMEDIATING and self._overlaps(incident, alert):
                # Late alert from the same blast radius (a starved
                # migration only notices after the correlation window).
                return incident
        return None

    def _overlaps(self, incident: Incident, alert: Alert) -> bool:
        if alert.kind in LINK_ALERT_KINDS:
            return alert.key in incident.links
        if alert.kind == "phi-spike":
            # Match suspects, not the full blast radius: a host that
            # merely *hosts an affected job* dying later is a second
            # incident (host failure during a fiber cut), not more of
            # the first one.
            return alert.key in incident.suspect_hosts
        return alert.key in incident.jobs or any(
            alert.key.startswith(j) for j in incident.jobs
        )

    def _absorb(self, incident: Incident, alert: Alert) -> None:
        incident.alerts.append(alert)
        incident.first_anomaly_at = min(
            incident.first_anomaly_at, alert.first_anomaly_at
        )
        if alert.severity == "critical":
            incident.severity = "critical"
        if alert.kind in LINK_ALERT_KINDS:
            incident.links.add(alert.key)
        elif alert.kind == "phi-spike":
            incident.hosts.add(alert.key)
            incident.suspect_hosts.add(alert.key)
        incident.klass = self._classify(incident)
        self._blast_radius(incident)

    def _classify(self, incident: Incident) -> str:
        kinds = {a.kind for a in incident.alerts}
        if "phi-spike" in kinds and "outage" not in kinds:
            return "host-failure"
        if "outage" in kinds:
            return "fiber-cut"
        degraded = {"bw-collapse", "latency-spike", "loss"} & kinds
        if degraded and incident.links and all(
            self._is_backbone(link) for link in incident.links
        ):
            return "degraded-wan"
        return "congestion"

    def _is_backbone(self, link_name: str) -> bool:
        return any(
            fnmatch.fnmatch(link_name, pattern)
            for pattern in self.backbone_patterns
        )

    def _blast_radius(self, incident: Incident) -> None:
        if self.orchestrator is None:
            return
        if incident.links:
            for request in self.orchestrator.affected_requests(
                sorted(incident.links)
            ):
                incident.request_ids.add(request.request_id)
                incident.jobs.add(request.job_id)
                incident.hosts.update(request.fleet_job.hosts())
        # A suspect host drags every job with a VM on it into the radius.
        for host in sorted(incident.suspect_hosts):
            for record in self.orchestrator.store.jobs_on(host):
                incident.jobs.add(record.job_id)
                incident.hosts.update(record.hosts())


__all__ = [
    "Incident",
    "IncidentCorrelator",
    "OPEN",
    "REMEDIATING",
    "RESOLVED",
    "LINK_ALERT_KINDS",
]
