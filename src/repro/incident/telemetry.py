"""Streaming telemetry: the sensory input of the incident-response loop.

Three producers feed one :class:`TelemetryBus`:

* :class:`LinkTelemetryProbe` — a periodic sampler over one fabric's
  links (goodput, loss, latency, outage flag) and, when wired to a
  :class:`~repro.recovery.failure_detector.HeartbeatMonitor`, every
  node's heartbeat phi;
* :class:`TracerBridge` — a live :meth:`~repro.sim.trace.Tracer.subscribe`
  consumer that republishes per-migration round statistics (the raw
  material of the non-convergence detector) without ever re-scanning
  trace history;
* anything else may call :meth:`TelemetryBus.publish` directly.

The bus keeps a bounded ring buffer per ``(stream, key)`` series — a
fiber cut must not make the controller's memory grow with outage length
— and fans each sample out to synchronous subscribers (the detectors).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.network.fabric import Fabric
    from repro.recovery.failure_detector import HeartbeatMonitor
    from repro.sim.trace import TraceRecord, Tracer

#: Stream names published by the built-in producers.
LINK_GOODPUT = "link.goodput_Bps"
LINK_LOSS = "link.loss"
LINK_LATENCY = "link.latency_s"
LINK_UP = "link.up"
HOST_PHI = "host.phi"
MIGRATION_ROUND = "migration.round"


@dataclass(frozen=True)
class TelemetrySample:
    """One observation on one series."""

    time: float
    stream: str  # e.g. "link.goodput_Bps"
    key: str     # series key within the stream (link name, host, vm)
    value: float
    fields: dict = field(default_factory=dict)


class TelemetryBus:
    """Bounded ring buffers per series + synchronous fan-out."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._series: Dict[Tuple[str, str], Deque[TelemetrySample]] = {}
        self._subscribers: List[Callable[[TelemetrySample], None]] = []
        self.published = 0
        #: Samples that pushed an older one out of a full ring buffer.
        self.dropped = 0

    # -- input -------------------------------------------------------------------

    def publish(self, sample: TelemetrySample) -> None:
        ring = self._series.get((sample.stream, sample.key))
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._series[(sample.stream, sample.key)] = ring
        if len(ring) == self.capacity:
            self.dropped += 1
        ring.append(sample)
        self.published += 1
        for callback in list(self._subscribers):
            callback(sample)

    def subscribe(self, callback: Callable[[TelemetrySample], None]) -> Callable[[], None]:
        """Deliver every future sample to ``callback``; returns unsubscribe."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    # -- queries -----------------------------------------------------------------

    def latest(self, stream: str, key: str) -> Optional[TelemetrySample]:
        ring = self._series.get((stream, key))
        return ring[-1] if ring else None

    def series(self, stream: str, key: str) -> List[TelemetrySample]:
        return list(self._series.get((stream, key), ()))

    def window(self, stream: str, key: str, since: float) -> List[TelemetrySample]:
        """Samples at or after ``since`` (ring-bounded, so best effort)."""
        return [s for s in self._series.get((stream, key), ()) if s.time >= since]

    def keys(self, stream: str) -> List[str]:
        return sorted(key for st, key in self._series if st == stream)

    def streams(self) -> List[str]:
        return sorted({st for st, _ in self._series})


class LinkTelemetryProbe:
    """Periodic sampler: link health + heartbeat phi onto the bus.

    Goodput is the summed rate of in-flight flows crossing each link, so
    idle links publish no goodput sample (an EWMA baseline must not learn
    zeros from silence); loss / latency / up are link state and sampled
    every tick for every link.
    """

    def __init__(
        self,
        cluster: "Cluster",
        bus: TelemetryBus,
        fabric: Optional["Fabric"] = None,
        heartbeats: Optional["HeartbeatMonitor"] = None,
        period_s: float = 0.25,
        trace: bool = False,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.bus = bus
        self.fabric = fabric if fabric is not None else cluster.eth_fabric
        self.heartbeats = heartbeats
        self.period_s = period_s
        #: Mirror every sample into the cluster tracer (batched appends).
        self.trace = trace
        self.ticks = 0
        self._proc = None

    def start(self):
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.env.process(self._run(), name="incident.probe")
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("probe stopped")
        self._proc = None

    def _run(self):
        from repro.sim.process import Interrupt

        try:
            while True:
                self.sample_once()
                yield self.env.timeout(self.period_s)
        except Interrupt:
            return

    def sample_once(self) -> int:
        """One sampling pass; returns the number of samples published."""
        now = self.env.now
        samples: List[TelemetrySample] = []
        goodput: Dict[str, float] = {}
        if self.fabric is not None:
            for flow in self.fabric.flows.iter_active():
                for dlink in flow.path:
                    name = dlink.link.name
                    goodput[name] = goodput.get(name, 0.0) + flow.rate_Bps
            for link in self.fabric.topology.links():
                samples.append(
                    TelemetrySample(now, LINK_UP, link.name, 1.0 if link.up else 0.0)
                )
                samples.append(TelemetrySample(now, LINK_LOSS, link.name, link.loss))
                samples.append(
                    TelemetrySample(now, LINK_LATENCY, link.name, link.latency_s)
                )
                if link.name in goodput:
                    samples.append(
                        TelemetrySample(
                            now, LINK_GOODPUT, link.name, goodput[link.name],
                            {"capacity_Bps": link.capacity_Bps},
                        )
                    )
        if self.heartbeats is not None:
            for node in self.heartbeats.detectors:
                samples.append(
                    TelemetrySample(now, HOST_PHI, node, self.heartbeats.phi(node))
                )
        for sample in samples:
            self.bus.publish(sample)
        if self.trace and self.cluster.tracer is not None:
            self.cluster.tracer.emit_batch(
                now,
                "telemetry",
                (
                    ("sample", {"stream": s.stream, "key": s.key, "value": s.value})
                    for s in samples
                ),
            )
        self.ticks += 1
        return len(samples)


class TracerBridge:
    """Republish live trace records as telemetry samples.

    Uses :meth:`Tracer.subscribe` (no history re-scan): ``migration.round``
    records become :data:`MIGRATION_ROUND` samples keyed by VM, carrying
    wire bytes as the value and the round index/pages/duration as fields.
    """

    def __init__(self, tracer: "Tracer", bus: TelemetryBus) -> None:
        self.tracer = tracer
        self.bus = bus
        self._unsubs: List[Callable[[], None]] = []

    def attach(self) -> None:
        if self._unsubs:
            return
        self._unsubs.append(
            self.tracer.subscribe("migration.round", self._on_round)
        )

    def detach(self) -> None:
        for unsub in self._unsubs:
            unsub()
        self._unsubs = []

    def _on_round(self, record: "TraceRecord") -> None:
        vm = str(record.fields.get("vm", "?"))
        self.bus.publish(
            TelemetrySample(
                record.time,
                MIGRATION_ROUND,
                vm,
                float(record.fields.get("wire_bytes", 0.0)),
                {
                    "index": record.fields.get("index"),
                    "pages": record.fields.get("pages"),
                    "seconds": record.fields.get("seconds"),
                },
            )
        )


__all__ = [
    "TelemetrySample",
    "TelemetryBus",
    "LinkTelemetryProbe",
    "TracerBridge",
    "LINK_GOODPUT",
    "LINK_LOSS",
    "LINK_LATENCY",
    "LINK_UP",
    "HOST_PHI",
    "MIGRATION_ROUND",
]
