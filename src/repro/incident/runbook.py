"""Declarative runbooks: incident class → ordered remediation actions.

Mirrors the alert-storm → diagnosis → runbook pattern of operational
network controllers: each incident class maps to an ordered tuple of
:class:`RunbookStep` entries, and :class:`RunbookExecutor` runs them with
per-action timeout and retry, journaling every step through the shared
:class:`~repro.recovery.journal.MigrationJournal`:

``incident-open``
    Remediation for an incident began (class, links, jobs recorded so a
    successor controller can rebuild the incident from the journal).
``incident-action-intent`` / ``incident-action-commit``
    A step is about to run / has completed.  After a controller crash the
    successor re-executes *intent-without-commit* steps (all actions are
    idempotent) and **skips committed ones** — remediation never
    double-executes an action.
``incident-resolved``
    The full runbook completed.

Built-in actions (all idempotent):

``blacklist-links``
    Declare the incident's links unusable in the
    :class:`~repro.orchestrator.planner.WavePlanner`.
``switch-postcopy``
    Flip the fleet's migration policy to an adaptive postcopy mode so
    retried/new sequences survive further degradation.
``raise-viability-floor``
    Defer new requests whose path bottleneck sits below the floor.
``evacuate-affected``
    Cancel doomed pending requests in the blast radius and resubmit the
    affected jobs as high-priority evacuations routed around the cut;
    waits for the evacuations to land (``restores_service=True`` steps
    stamp the incident's MTTR).
``evacuate-host``
    Evacuate every job with live VMs on the incident's suspect hosts.
    Hosts that are already dead — or jobs whose VMs died with them —
    are *skipped* (fall-through), not failed: a dead guest cannot be
    parked, so those jobs belong to ``restore-from-checkpoint``.
``restore-from-checkpoint``
    Re-create jobs whose VMs died with a failed host from their last
    *committed* checkpoint generation, on spare capacity leased from
    the :class:`~repro.orchestrator.state.SpareArbiter` (ordered by
    blast radius across overlapping incidents).  Brackets the restore
    with ``restore-intent`` / ``restore-commit`` journal records and
    crash-injection sites (``incident.restore.intent`` / ``.boot`` /
    ``.commit``) so a successor controller resumes without ever
    double-restoring: committed jobs are skipped, booted-but-
    uncommitted jobs are reconciled, untouched jobs are re-run.
``await-heal``
    Poll until the incident's links are back up and undegraded.
``readmit``
    Lift the blacklist and restore the pre-incident viability floor and
    migration policy.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import FleetError, IncidentError, NetworkError, ReproError
from repro.incident.correlator import REMEDIATING, RESOLVED, Incident
from repro.orchestrator.admission import (
    COMPLETED,
    FAILED,
    PENDING,
    RUNNING,
    MigrationRequest,
)
from repro.sim.process import Interrupt
from repro.vmm.policy import MigrationPolicy
from repro.vmm.vm import RunState

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.cluster import Cluster
    from repro.orchestrator.executor import FleetOrchestrator
    from repro.orchestrator.state import FleetJob
    from repro.recovery.checkpoints import FleetCheckpointService
    from repro.recovery.journal import MigrationJournal

#: Crash-injection sites bracketing the checkpoint-restore path.
RESTORE_INTENT_SITE = "incident.restore.intent"
RESTORE_BOOT_SITE = "incident.restore.boot"
RESTORE_COMMIT_SITE = "incident.restore.commit"


@dataclass(frozen=True)
class RunbookStep:
    """One remediation action with its execution policy."""

    action: str
    params: Dict[str, object] = field(default_factory=dict)
    timeout_s: float = 120.0
    retries: int = 1
    #: The step whose completion restores service (stamps MTTR).
    restores_service: bool = False


#: Incident class → ordered remediation steps.
DEFAULT_RUNBOOK: Dict[str, Tuple[RunbookStep, ...]] = {
    "fiber-cut": (
        RunbookStep("blacklist-links", timeout_s=5.0),
        RunbookStep("switch-postcopy", {"mode": "fallback"}, timeout_s=5.0),
        RunbookStep("raise-viability-floor", {"floor_Bps": 50e6}, timeout_s=5.0),
        RunbookStep("evacuate-affected", timeout_s=300.0, retries=1,
                    restores_service=True),
        RunbookStep("await-heal", {"recheck_s": 1.0, "max_wait_s": 600.0},
                    timeout_s=900.0, retries=0),
        RunbookStep("readmit", timeout_s=5.0),
    ),
    "host-failure": (
        RunbookStep("evacuate-host", timeout_s=300.0, retries=1),
        RunbookStep("restore-from-checkpoint", timeout_s=600.0, retries=1,
                    restores_service=True),
    ),
    "degraded-wan": (
        RunbookStep("switch-postcopy", {"mode": "fallback"}, timeout_s=5.0),
        RunbookStep("raise-viability-floor", {"floor_Bps": 50e6}, timeout_s=5.0,
                    restores_service=True),
        RunbookStep("await-heal", {"recheck_s": 1.0, "max_wait_s": 600.0},
                    timeout_s=900.0, retries=0),
        RunbookStep("readmit", timeout_s=5.0),
    ),
    "congestion": (
        RunbookStep("switch-postcopy", {"mode": "fallback"}, timeout_s=5.0,
                    restores_service=True),
    ),
}


class RunbookExecutor:
    """Executes runbooks with journaled, crash-recoverable steps."""

    def __init__(
        self,
        cluster: "Cluster",
        orchestrator: "FleetOrchestrator",
        journal: Optional["MigrationJournal"] = None,
        runbook: Optional[Dict[str, Tuple[RunbookStep, ...]]] = None,
        checkpoints: Optional["FleetCheckpointService"] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.orchestrator = orchestrator
        self.journal = journal if journal is not None else orchestrator.journal
        self.runbook = runbook if runbook is not None else DEFAULT_RUNBOOK
        #: Checkpoint service backing ``restore-from-checkpoint``.  May be
        #: None: the restore step then no-ops unless jobs actually need
        #: restoring, in which case it fails loudly.
        self.checkpoints = checkpoints
        #: (incident_id, step_index, action) tuples actually executed by
        #: *this* executor — the no-double-execution assertion's witness.
        self.executed: List[Tuple[int, int, str]] = []
        #: Evacuation requests submitted per incident.
        self.evacuations: Dict[int, List[MigrationRequest]] = {}
        #: (incident_id, job_id, generation) restores committed by *this*
        #: executor — the no-double-restore assertion's witness.
        self.restores: List[Tuple[int, str, int]] = []
        self._saved_floor: Dict[int, object] = {}
        self._saved_policy: Dict[int, object] = {}
        self.actions = {
            "blacklist-links": RunbookExecutor._act_blacklist_links,
            "switch-postcopy": RunbookExecutor._act_switch_postcopy,
            "raise-viability-floor": RunbookExecutor._act_raise_floor,
            "evacuate-affected": RunbookExecutor._act_evacuate_affected,
            "evacuate-host": RunbookExecutor._act_evacuate_host,
            "restore-from-checkpoint":
                RunbookExecutor._act_restore_from_checkpoint,
            "await-heal": RunbookExecutor._act_await_heal,
            "readmit": RunbookExecutor._act_readmit,
        }

    # -- journal folds -----------------------------------------------------------

    def committed_steps(self, incident_id: int) -> Set[int]:
        """Step indices already committed for this incident (journal fold)."""
        done: Set[int] = set()
        for record in self.journal.records:
            if (
                record.kind == "incident-action-commit"
                and record.payload.get("incident") == incident_id
            ):
                done.add(int(record.payload.get("step", -1)))
        return done

    def resolved(self, incident_id: int) -> bool:
        return any(
            r.kind == "incident-resolved"
            and r.payload.get("incident") == incident_id
            for r in self.journal.records
        )

    # -- execution ---------------------------------------------------------------

    def execute(self, incident: Incident):
        """Generator: run (or resume) the incident's runbook to completion.

        Raises :class:`IncidentError` when a step exhausts its retries;
        lets :class:`~repro.errors.ControllerCrashError` propagate — a
        dead controller journals nothing further, and a successor calls
        :meth:`execute` again to resume from the last committed step.
        """
        steps = self.runbook.get(incident.klass)
        if steps is None:
            raise IncidentError(
                f"no runbook for incident class {incident.klass!r}"
            )
        if self.resolved(incident.incident_id):
            incident.status = RESOLVED
            return incident
        committed = self.committed_steps(incident.incident_id)
        if not committed:
            self.journal.append(
                "incident-open",
                incident=incident.incident_id,
                klass=incident.klass,
                links=sorted(incident.links),
                hosts=sorted(incident.hosts),
                suspect_hosts=sorted(incident.suspect_hosts),
                jobs=sorted(incident.jobs),
                opened_at=incident.opened_at,
                first_anomaly_at=incident.first_anomaly_at,
            )
        incident.status = REMEDIATING
        self.cluster.trace(
            "incident", "remediation_started",
            incident=incident.incident_id, klass=incident.klass,
            resumed_from_step=len(committed),
        )
        for index, step in enumerate(steps):
            if index in committed:
                incident.actions.append(f"{step.action} (recovered: skipped)")
                continue
            self.journal.append(
                "incident-action-intent",
                incident=incident.incident_id, step=index, action=step.action,
            )
            # Crash-injection site: a controller death here leaves intent
            # without commit, so the successor re-runs this step.
            yield from self.cluster.faults.perturb(f"incident.action.{step.action}")
            yield from self._run_step(incident, index, step)
            self.journal.append(
                "incident-action-commit",
                incident=incident.incident_id, step=index, action=step.action,
            )
            self.executed.append((incident.incident_id, index, step.action))
            incident.actions.append(step.action)
            if step.restores_service and incident.remediated_at is None:
                incident.remediated_at = self.env.now
                self.cluster.trace(
                    "incident", "service_restored",
                    incident=incident.incident_id,
                    mttr_s=round(incident.mttr_s or 0.0, 3),
                )
        incident.status = RESOLVED
        incident.resolved_at = self.env.now
        self.journal.append("incident-resolved", incident=incident.incident_id)
        self.cluster.trace(
            "incident", "resolved", incident=incident.incident_id,
            klass=incident.klass,
        )
        return incident

    def _run_step(self, incident: Incident, index: int, step: RunbookStep):
        if step.action not in self.actions:
            raise IncidentError(f"unknown runbook action {step.action!r}")
        last_err = ""
        for _attempt in range(step.retries + 1):
            proc = self.env.process(
                self._action_proc(incident, step),
                name=f"incident.{incident.incident_id}.{step.action}",
            )
            timeout = self.env.timeout(step.timeout_s)
            try:
                yield self.env.any_of([proc, timeout])
            except ReproError as err:
                last_err = str(err)
                continue
            if proc.is_alive:  # the timeout won the race
                proc.interrupt("runbook step timeout")
                last_err = f"timed out after {step.timeout_s:g}s"
                continue
            return
        raise IncidentError(
            f"runbook action {step.action!r} (step {index}) failed after "
            f"{step.retries + 1} attempt(s): {last_err}"
        )

    def _action_proc(self, incident: Incident, step: RunbookStep):
        fn = self.actions[step.action]
        try:
            result = fn(self, incident, dict(step.params))
            if result is not None:
                yield from result
            else:
                yield self.env.timeout(0.0)
        except Interrupt:
            return

    # -- actions -----------------------------------------------------------------

    def _act_blacklist_links(self, incident: Incident, params: dict) -> None:
        self.orchestrator.planner.blacklist_links(sorted(incident.links))
        self.cluster.trace(
            "incident", "links_blacklisted",
            incident=incident.incident_id, links=sorted(incident.links),
        )

    def _act_switch_postcopy(self, incident: Incident, params: dict) -> None:
        mode = str(params.get("mode", "fallback"))
        self._saved_policy.setdefault(
            incident.incident_id, self.orchestrator.ninja.migration_policy
        )
        self.orchestrator.ninja.migration_policy = MigrationPolicy.adaptive(
            postcopy=mode
        )
        self.cluster.trace(
            "incident", "postcopy_switched",
            incident=incident.incident_id, mode=mode,
        )

    def _act_raise_floor(self, incident: Incident, params: dict) -> None:
        floor = float(params.get("floor_Bps", 50e6))  # type: ignore[arg-type]
        config = self.orchestrator.config
        self._saved_floor.setdefault(
            incident.incident_id, config.viability_floor_Bps
        )
        config.viability_floor_Bps = max(config.viability_floor_Bps or 0.0, floor)
        self.cluster.trace(
            "incident", "viability_floor_raised",
            incident=incident.incident_id, floor_Bps=config.viability_floor_Bps,
        )

    def _act_evacuate_affected(self, incident: Incident, params: dict):
        """Cancel doomed requests, evacuate their jobs around the cut."""
        orch = self.orchestrator
        jobs = set(incident.jobs)
        for request in orch.affected_requests(sorted(incident.links)):
            jobs.add(request.job_id)
            if request.status == PENDING:
                orch.cancel(
                    request, reason=f"incident-{incident.incident_id}: "
                    f"{incident.klass} severed the planned path",
                )
            elif request.status == RUNNING:
                # The transactional abort path will roll it back; stop it
                # from retrying a destination the evacuation supersedes.
                request.max_attempts = request.attempts
        # Requests that already failed ("no feasible placement") before
        # remediation won the race still leave their jobs stranded.
        for request in orch.requests:
            if request.status == FAILED and request.job_id in incident.jobs:
                jobs.add(request.job_id)
        submitted = self.evacuations.setdefault(incident.incident_id, [])
        to_evacuate: List[str] = []
        for job_id in sorted(jobs):
            if any(
                r.kind == "evacuate" and not r.terminal
                for r in orch.requests
                if r.job_id == job_id
            ):
                continue
            record = orch.store.job(job_id)
            if any(q.vm.state is RunState.SHUTOFF for q in record.qemus):
                # Dead guests cannot be parked; restore owns this job.
                self.cluster.trace(
                    "incident", "evacuation_skipped",
                    incident=incident.incident_id, job=job_id,
                    reason="vm-down",
                )
                continue
            to_evacuate.append(job_id)
        yield from self._lease_spares(incident, to_evacuate)
        try:
            for job_id in to_evacuate:
                request = orch.submit(
                    job_id, kind="evacuate",
                    priority=orch.config.evacuation_priority,
                    incident_id=incident.incident_id,
                )
                request.blacklist.update(
                    self._unreachable_hosts(job_id, incident.links)
                )
                submitted.append(request)
            self.cluster.trace(
                "incident", "evacuations_submitted",
                incident=incident.incident_id, jobs=sorted(jobs),
                requests=[r.request_id for r in submitted],
            )
            for request in list(submitted):
                if not request.terminal and request.done is not None:
                    yield request.done
            bad = [r for r in submitted if r.status != COMPLETED]
            if bad:
                raise IncidentError(
                    f"evacuation failed for {sorted(r.job_id for r in bad)}"
                )
        finally:
            orch.arbiter.release(incident.incident_id)
        yield self.env.timeout(0.0)

    def _act_evacuate_host(self, incident: Incident, params: dict):
        """Drain live jobs off the suspect hosts; fall through cleanly.

        A host that already died cannot be drained, and a job whose VMs
        died with it cannot be parked — those targets are *skipped* (the
        runbook proceeds to ``restore-from-checkpoint``), never failed.
        """
        orch = self.orchestrator
        submitted = self.evacuations.setdefault(incident.incident_id, [])
        skipped: List[str] = []
        to_evacuate: List[str] = []
        for host in sorted(incident.suspect_hosts or incident.hosts):
            if self.cluster.node(host).failed:
                skipped.append(f"{host}:host-failed")
                continue
            for record in orch.store.jobs_on(host):
                if any(
                    r.kind == "evacuate" and not r.terminal
                    for r in orch.requests
                    if r.fleet_job is record
                ):
                    continue
                if any(q.vm.state is RunState.SHUTOFF for q in record.qemus):
                    skipped.append(f"{host}:{record.job_id}:vm-down")
                    continue
                if record.job_id not in to_evacuate:
                    to_evacuate.append(record.job_id)
        if skipped:
            self.cluster.trace(
                "incident", "evacuation_fell_through",
                incident=incident.incident_id, skipped=skipped,
            )
        if not to_evacuate:
            yield self.env.timeout(0.0)
            return
        yield from self._lease_spares(incident, to_evacuate)
        try:
            for job_id in to_evacuate:
                submitted.append(
                    orch.submit(
                        job_id, kind="evacuate",
                        priority=orch.config.evacuation_priority,
                        incident_id=incident.incident_id,
                    )
                )
            for request in list(submitted):
                if not request.terminal and request.done is not None:
                    yield request.done
            bad = [r for r in submitted if r.status != COMPLETED]
            if bad:
                raise IncidentError(
                    f"evacuation failed for {sorted(r.job_id for r in bad)}"
                )
        finally:
            orch.arbiter.release(incident.incident_id)

    def _act_restore_from_checkpoint(self, incident: Incident, params: dict):
        """Restore dead jobs from their last committed checkpoint.

        Idempotent and crash-recoverable: jobs with a ``restore-commit``
        record for this incident are skipped, restores a dead predecessor
        finished booting but never committed are reconciled into the
        journal, and everything else re-runs from scratch on spare hosts
        leased through the arbiter.
        """
        orch = self.orchestrator
        self._reconcile_restores(incident)
        targets = self._jobs_needing_restore(incident)
        if not targets:
            yield self.env.timeout(0.0)
            return
        if self.checkpoints is None:
            raise IncidentError(
                f"jobs {sorted(r.job_id for r in targets)} lost VMs but no "
                "checkpoint service is attached — nothing to restore from"
            )
        for record in targets:
            yield from self._restore_one(incident, record, params)
        orch.nudge()

    def _restore_one(self, incident: Incident, record: "FleetJob", params: dict):
        orch = self.orchestrator
        service = self.checkpoints
        iid = incident.incident_id
        generation = self.journal.last_committed_checkpoint(record.job_id)
        if generation is None:
            raise IncidentError(
                f"{record.job_id}: no committed checkpoint generation — "
                "the job's state died with the host"
            )
        gen_no = int(generation.get("generation", -1))
        # ``spare_pattern`` restricts restore targets to designated spare
        # hosts (e.g. "sp*") instead of any host that happens to be empty.
        pattern = str(params.get("spare_pattern", "*"))
        candidates = [
            h for h in self._spare_candidates(incident)
            if fnmatch.fnmatch(h, pattern)
        ]
        lease = candidates[: len(record.qemus)] or candidates
        if not lease:
            raise IncidentError(
                f"{record.job_id}: no spare capacity available for restore"
            )
        hosts = yield from orch.arbiter.acquire(
            iid, lease,
            blast_radius=len(incident.jobs) + len(incident.request_ids),
        )
        try:
            self.journal.append(
                "restore-intent",
                incident=iid, job=record.job_id, generation=gen_no,
                hosts=sorted(hosts), epoch=service.epoch,
            )
            yield from self.cluster.faults.perturb(RESTORE_INTENT_SITE)
            # The restored job supersedes any in-flight migration work.
            for request in orch.requests:
                if request.fleet_job is record and not request.terminal:
                    if request.status == PENDING:
                        orch.cancel(
                            request,
                            reason=f"incident-{iid}: superseded by restore",
                        )
                    elif request.status == RUNNING:
                        request.max_attempts = request.attempts
            yield from self.cluster.faults.perturb(RESTORE_BOOT_SITE)
            outcome = yield from service.restore_job(
                record, generation, sorted(hosts), name_tag=f"+i{iid}"
            )
            orch.store.replace_job(record.job_id, outcome.job, outcome.qemus)
            if record.rank_main is not None:
                outcome.job.launch(record.rank_main)
            yield from self.cluster.faults.perturb(RESTORE_COMMIT_SITE)
            self.cluster.fencing.check(service.epoch, actor="restore")
            rto_s = self.env.now - incident.first_anomaly_at
            rpo_s = max(
                incident.first_anomaly_at
                - float(generation.get("consistency_at", 0.0)),
                0.0,
            )
            self.journal.append(
                "restore-commit",
                incident=iid, job=record.job_id, generation=gen_no,
                hosts=sorted(hosts),
                vms=sorted(q.vm.name for q in outcome.qemus),
                adopted=sorted(outcome.adopted),
                rpo_s=round(rpo_s, 6), rto_s=round(rto_s, 6),
                epoch=service.epoch,
            )
            self.restores.append((iid, record.job_id, gen_no))
            self.cluster.trace(
                "incident", "job_restored", incident=iid, job=record.job_id,
                generation=gen_no, hosts=sorted(hosts),
                rpo_s=round(rpo_s, 3), rto_s=round(rto_s, 3),
            )
        finally:
            orch.arbiter.release(iid)

    def _jobs_needing_restore(self, incident: Incident) -> List["FleetJob"]:
        """Blast-radius jobs with dead VMs and no committed restore."""
        orch = self.orchestrator
        out: List["FleetJob"] = []
        for host in sorted(incident.suspect_hosts or incident.hosts):
            for record in orch.store.jobs_on(host):
                if record in out:
                    continue
                if self.journal.restore_commit_for(
                    incident.incident_id, record.job_id
                ):
                    continue
                if any(
                    q.vm.state is RunState.SHUTOFF or q.node.failed
                    for q in record.qemus
                ):
                    out.append(record)
        return out

    def _reconcile_restores(self, incident: Incident) -> None:
        """Commit restores a dead predecessor booted but never journaled.

        A controller crash between the restored job launching and the
        ``restore-commit`` append leaves intent-without-commit with the
        new VMs already running.  Re-running the restore would double it;
        the successor instead writes the missing commit (``recovered``).
        """
        orch = self.orchestrator
        for payload in self.journal.uncommitted_restores(incident.incident_id):
            job_id = str(payload.get("job"))
            try:
                record = orch.store.job(job_id)
            except FleetError:
                continue
            if any(
                q.vm.state is not RunState.RUNNING or q.node.failed
                for q in record.qemus
            ):
                continue  # nothing booted — the restore simply re-runs
            generation = self.journal.last_committed_checkpoint(job_id)
            rpo_s = max(
                incident.first_anomaly_at
                - float((generation or {}).get("consistency_at", 0.0)),
                0.0,
            )
            self.journal.append(
                "restore-commit",
                incident=incident.incident_id, job=job_id,
                generation=int(payload.get("generation", -1)),
                hosts=list(payload.get("hosts", ())),
                vms=sorted(q.vm.name for q in record.qemus),
                adopted=sorted(q.vm.name for q in record.qemus),
                rpo_s=round(rpo_s, 6),
                rto_s=round(self.env.now - incident.first_anomaly_at, 6),
                epoch=payload.get("epoch"),
                recovered=True,
            )
            self.cluster.trace(
                "incident", "restore_reconciled",
                incident=incident.incident_id, job=job_id,
            )

    def _spare_candidates(self, incident: Incident) -> List[str]:
        """Empty, healthy, unreserved hosts not leased to another incident."""
        orch = self.orchestrator
        foreign = orch.arbiter.leased_to_others(incident.incident_id)
        out: List[str] = []
        for name in sorted(self.cluster.nodes):
            node = self.cluster.node(name)
            if node.failed or node.vms or name in foreign:
                continue
            if name in incident.suspect_hosts:
                continue
            if orch.store.reserved_bytes(name) > 0:
                continue
            out.append(name)
        return out

    def _lease_spares(self, incident: Incident, job_ids: List[str]):
        """Lease one spare slot per VM being moved (all-or-nothing).

        Serialises this incident's landing zone against overlapping
        incidents; released by the caller once the VMs occupy (or no
        longer need) the spares.  No-op when nothing is moving or no
        spares exist — ordinary placement still applies.
        """
        orch = self.orchestrator
        need = sum(
            len(orch.store.job(job_id).qemus) for job_id in job_ids
        )
        lease = self._spare_candidates(incident)[:need]
        if lease:
            yield from orch.arbiter.acquire(
                incident.incident_id, lease,
                blast_radius=len(incident.jobs) + len(incident.request_ids),
            )
        else:
            yield self.env.timeout(0.0)

    def _act_await_heal(self, incident: Incident, params: dict):
        recheck_s = float(params.get("recheck_s", 1.0))  # type: ignore[arg-type]
        max_wait_s = float(params.get("max_wait_s", 600.0))  # type: ignore[arg-type]
        waited = 0.0
        while not self._links_healthy(incident.links):
            if waited >= max_wait_s:
                raise IncidentError(
                    f"links {sorted(incident.links)} did not heal within "
                    f"{max_wait_s:g}s"
                )
            yield self.env.timeout(recheck_s)
            waited += recheck_s
        self.cluster.trace(
            "incident", "links_healed",
            incident=incident.incident_id, links=sorted(incident.links),
            waited_s=round(waited, 3),
        )

    def _act_readmit(self, incident: Incident, params: dict) -> None:
        orch = self.orchestrator
        orch.planner.unblacklist_links(sorted(incident.links))
        if incident.incident_id in self._saved_floor:
            orch.config.viability_floor_Bps = self._saved_floor.pop(
                incident.incident_id
            )  # type: ignore[assignment]
        if incident.incident_id in self._saved_policy:
            orch.ninja.migration_policy = self._saved_policy.pop(
                incident.incident_id
            )  # type: ignore[assignment]
        orch.nudge()
        self.cluster.trace(
            "incident", "readmitted",
            incident=incident.incident_id, links=sorted(incident.links),
        )

    # -- helpers -----------------------------------------------------------------

    def _links_healthy(self, names) -> bool:
        fabric = self.cluster.eth_fabric
        if fabric is None:
            return True
        for link in fabric.topology.links():
            if link.name in names and (not link.up or link.degraded):
                return False
        return True

    def _unreachable_hosts(self, job_id: str, cut_links) -> Set[str]:
        """Hosts whose path from the job would cross the severed links."""
        fabric = self.cluster.eth_fabric
        if fabric is None:
            return set()
        topology = fabric.topology
        record = self.orchestrator.store.job(job_id)
        srcs = record.hosts()
        unreachable: Set[str] = set()
        for dst in self.cluster.nodes:
            if dst in srcs:
                continue
            for src in srcs:
                try:
                    path = topology.path(src, dst)
                except NetworkError:
                    unreachable.add(dst)
                    break
                if any(dlink.link.name in cut_links for dlink in path):
                    unreachable.add(dst)
                    break
        return unreachable


__all__ = [
    "RunbookStep",
    "RunbookExecutor",
    "DEFAULT_RUNBOOK",
    "RESTORE_INTENT_SITE",
    "RESTORE_BOOT_SITE",
    "RESTORE_COMMIT_SITE",
]
