"""The fiber-cut drill behind ``repro incident`` and BENCH_incident.json.

Same two-site estate as the fleet scenario — IB blades draining onto an
Ethernet estate whose far half sits behind a thin WAN pipe — plus a few
*spare* hosts in the primary enclosure (evacuation headroom), a
heartbeat mesh, and the full incident-response stack.  ``cut_at_s``
seconds into the drain the WAN fiber goes dark for ``heal_after_s``
seconds, killing whatever migration is mid-flight over it.

With ``autonomous=True`` the :class:`~repro.incident.manager.IncidentManager`
must detect the cut from telemetry, classify it ``fiber-cut``, and run
the runbook: blacklist the severed links, switch retried sequences to
postcopy-fallback, raise the viability floor, evacuate the stranded jobs
around the cut, wait for the heal, and re-admit — with zero lost VMs.
``autonomous=False`` is the baseline: same cut, diagnosis only, and the
jobs whose destinations died stay failed.

``crash_during_remediation=True`` additionally kills the controller at
the evacuation step (after the journal intent, before the action); the
driver then builds a *successor* manager over the same journal and
:meth:`~repro.incident.manager.IncidentManager.resume` must finish the
runbook without double-executing any committed step.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.errors import ControllerCrashError
from repro.hardware.cluster import Cluster
from repro.incident.correlator import RESOLVED
from repro.incident.manager import IncidentManager
from repro.network.degradation import DegradationEvent, NetworkChaos
from repro.orchestrator.executor import FleetConfig, FleetOrchestrator
from repro.orchestrator.scenario import _provision_fleet
from repro.recovery.failure_detector import HeartbeatMonitor
from repro.sim.trace import Tracer
from repro.units import gbps

#: Crash-injection site used by ``crash_during_remediation`` (the
#: evacuation is the long-running, most-interruptible runbook step).
CRASH_SITE = "incident.action.evacuate-affected"


@dataclass
class IncidentScenarioResult:
    """Everything ``repro incident`` prints and BENCH_incident.json records."""

    jobs: int
    vms_per_job: int
    autonomous: bool
    cut_at_s: float
    heal_after_s: float
    #: Diagnosis: the classified incidents (``Incident.to_dict`` payloads).
    incidents: List[Dict[str, object]] = field(default_factory=list)
    incident_class: str = ""
    mttd_s: Optional[float] = None
    mttr_s: Optional[float] = None
    alerts: int = 0
    all_resolved: bool = False
    #: Request outcomes (spread drain + evacuations + retries).
    completed: int = 0
    aborted: int = 0
    failed: int = 0
    cancelled: int = 0
    evacuated_jobs: List[str] = field(default_factory=list)
    outcomes: List[Dict[str, object]] = field(default_factory=list)
    #: VMs left parked (lost) at the end — the headline must be empty.
    lost_vms: List[str] = field(default_factory=list)
    actions: List[str] = field(default_factory=list)
    #: Crash drill bookkeeping.
    crash_injected: bool = False
    crashed: bool = False
    resumed_incidents: int = 0
    #: (incident, step, action) triples executed more than once across
    #: the dead and successor controllers — must stay empty.
    double_executed: List[List[object]] = field(default_factory=list)
    makespan_s: float = 0.0
    final_hosts: Dict[str, List[str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def build_incident_cluster(
    nvms: int,
    spares: int = 2,
    wan_gbps: float = 1.0,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> Cluster:
    """The fleet-scenario estate plus ``spares`` empty primary-site hosts.

    The spares (``sp01``…) give the runbook somewhere local to evacuate
    to while the WAN — and with it half the Ethernet estate — is dark.
    """
    if nvms < 2:
        raise ValueError("incident scenario needs at least 2 VMs")
    cluster = Cluster(seed=seed, tracer=tracer)
    ib_names = [f"ib{i + 1:02d}" for i in range(nvms)]
    eth_names = [f"eth{i + 1:02d}" for i in range(nvms)]
    spare_names = [f"sp{i + 1:02d}" for i in range(spares)]
    local_eth = eth_names[: (nvms + 1) // 2]
    remote_eth = eth_names[(nvms + 1) // 2:]
    for name in ib_names + eth_names + spare_names:
        cluster.add_node(name)
    cluster.wire_ethernet(
        sites={
            "primary": ib_names + local_eth + spare_names,
            "backup": remote_eth,
        },
        wan_bandwidth_Bps=gbps(wan_gbps),
        wan_latency_s=5e-3,
    )
    cluster.wire_infiniband(ib_names)
    return cluster


def run_incident_scenario(
    jobs: int = 4,
    vms_per_job: int = 1,
    spares: int = 2,
    cut_at_s: float = 6.0,
    heal_after_s: float = 120.0,
    autonomous: bool = True,
    crash_during_remediation: bool = False,
    wan_gbps: float = 1.0,
    tenants: int = 2,
    link_budget_s: Optional[float] = 30.0,
    heartbeat_period_s: float = 0.5,
    probe_period_s: float = 0.25,
    max_runtime_s: float = 900.0,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    manager_out: Optional[list] = None,
    orchestrator_out: Optional[list] = None,
) -> IncidentScenarioResult:
    """Drain the fleet, cut the WAN fiber mid-drain, and report how the
    incident-response stack (or its absence) handled it.

    ``manager_out``/``orchestrator_out``, when given, receive the live
    :class:`IncidentManager` objects (dead then successor, in order) and
    the :class:`FleetOrchestrator` for tests that inspect internals.
    """
    nvms = jobs * vms_per_job
    cluster = build_incident_cluster(
        nvms, spares=spares, wan_gbps=wan_gbps, seed=seed, tracer=tracer
    )
    env = cluster.env
    if crash_during_remediation:
        cluster.faults.arm(
            CRASH_SITE,
            error=ControllerCrashError("injected crash mid-remediation"),
        )

    config = FleetConfig(link_budget_s=link_budget_s)
    orch = FleetOrchestrator(cluster, config=config)
    if orchestrator_out is not None:
        orchestrator_out.append(orch)

    records = _provision_fleet(cluster, jobs, vms_per_job, tenants)
    for job_id, tenant, job, qemus, _ in records:
        orch.register_job(job_id, job, qemus, tenant=tenant)

    # Heartbeat mesh: every node beats; phi feeds both the legacy
    # HealthMonitor evacuation path and the incident telemetry probe.
    monitor = HeartbeatMonitor(cluster)
    for node in cluster.nodes:
        env.process(
            monitor.emit_heartbeats(node, heartbeat_period_s),
            name=f"heartbeat.{node}",
        )
    monitor.start()
    orch.watch(monitor.health)

    manager = IncidentManager(
        cluster,
        orch,
        heartbeats=monitor,
        probe_period_s=probe_period_s,
        autonomous=autonomous,
    )
    manager.start()  # pre-cut samples let EWMA baselines learn "healthy"
    managers = [manager]
    if manager_out is not None:
        manager_out.append(manager)

    chaos = NetworkChaos(
        cluster,
        [
            DegradationEvent(
                at_time=cut_at_s,
                kind="drop",
                duration_s=heal_after_s,
                link_pattern="wan:*",
            )
        ],
    )

    start_at = env.now + 1.0

    def _submit_all():
        yield env.timeout(start_at - env.now)
        # The chaos clock starts with the drain: the fiber dies
        # ``cut_at_s`` seconds into the migration traffic.
        chaos.start()
        for job_id, _, _, _, dst_hosts in records:
            orch.submit(job_id, kind="spread", dst_hosts=dst_hosts)

    env.process(_submit_all(), name="incident.submit")
    env.run(until=start_at + 0.001)

    def _all_incidents():
        # Latest manager wins: a successor's rebuilt incident supersedes
        # the dead manager's (forever-REMEDIATING) copy of the same id.
        by_id: Dict[int, object] = {}
        for m in managers:
            for incident in m.incidents:
                by_id[incident.incident_id] = incident
        return [by_id[iid] for iid in sorted(by_id)]

    def _done() -> bool:
        if not all(r.terminal for r in orch.requests):
            return False
        if crash_during_remediation and not manager.crashed:
            return False  # the armed crash has not fired yet
        incidents = _all_incidents()
        if autonomous:
            # Converged once the cut was diagnosed and fully remediated.
            return bool(incidents) and all(
                i.status == RESOLVED for i in incidents
            )
        # Diagnosis-only baseline: give detection time to open the
        # incident after the last request settles.
        return bool(incidents) and env.now >= start_at + cut_at_s + 5.0

    deadline = start_at + max_runtime_s
    resumed_count = 0
    while env.now < deadline and not _done():
        if (
            crash_during_remediation
            and manager.crashed
            and len(managers) == 1
        ):
            # The dead controller stops observing; a successor rebuilds
            # the incident from the journal and finishes the runbook.
            manager.stop()
            successor = IncidentManager(
                cluster,
                orch,
                heartbeats=monitor,
                probe_period_s=probe_period_s,
                autonomous=True,
            )
            successor.start()
            resumed_count = len(successor.resume())
            managers.append(successor)
            if manager_out is not None:
                manager_out.append(successor)
        env.run(until=env.now + 0.5)

    unique_incidents = _all_incidents()

    executed: List[tuple] = []
    for m in managers:
        executed.extend(m.executor.executed)
    doubles = sorted(
        {item for item in executed if executed.count(item) > 1}
    )

    primary = unique_incidents[0] if unique_incidents else None
    statuses = [r.status for r in orch.requests]
    all_qemus = [q for _, _, _, qemus, _ in records for q in qemus]
    return IncidentScenarioResult(
        jobs=jobs,
        vms_per_job=vms_per_job,
        autonomous=autonomous,
        cut_at_s=cut_at_s,
        heal_after_s=heal_after_s,
        incidents=[i.to_dict() for i in unique_incidents],
        incident_class=primary.klass if primary is not None else "",
        mttd_s=round(primary.mttd_s, 4) if primary is not None else None,
        mttr_s=(
            round(primary.mttr_s, 4)
            if primary is not None and primary.mttr_s is not None
            else None
        ),
        alerts=sum(len(m.alerts) for m in managers),
        all_resolved=bool(unique_incidents)
        and all(i.status == RESOLVED for i in unique_incidents),
        completed=statuses.count("completed"),
        aborted=statuses.count("aborted"),
        failed=statuses.count("failed"),
        cancelled=statuses.count("cancelled"),
        evacuated_jobs=sorted(
            {
                r.job_id
                for r in orch.requests
                if r.kind == "evacuate" and r.status == "completed"
            }
        ),
        outcomes=[
            {
                "request": r.request_id,
                "job": r.job_id,
                "kind": r.kind,
                "status": r.status,
                "attempts": r.attempts,
                "error": r.error,
            }
            for r in orch.requests
        ],
        lost_vms=sorted(
            q.vm.name for q in all_qemus if q.vm.hypercall.parked
        ),
        actions=list(primary.actions) if primary is not None else [],
        crash_injected=crash_during_remediation,
        crashed=manager.crashed,
        resumed_incidents=resumed_count,
        double_executed=[list(item) for item in doubles],
        makespan_s=round(env.now - start_at, 3),
        final_hosts={
            job_id: [q.node.name for q in qemus]
            for job_id, _, _, qemus, _ in records
        },
    )
