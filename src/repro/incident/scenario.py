"""The fiber-cut drill behind ``repro incident`` and BENCH_incident.json.

Same two-site estate as the fleet scenario — IB blades draining onto an
Ethernet estate whose far half sits behind a thin WAN pipe — plus a few
*spare* hosts in the primary enclosure (evacuation headroom), a
heartbeat mesh, and the full incident-response stack.  ``cut_at_s``
seconds into the drain the WAN fiber goes dark for ``heal_after_s``
seconds, killing whatever migration is mid-flight over it.

With ``autonomous=True`` the :class:`~repro.incident.manager.IncidentManager`
must detect the cut from telemetry, classify it ``fiber-cut``, and run
the runbook: blacklist the severed links, switch retried sequences to
postcopy-fallback, raise the viability floor, evacuate the stranded jobs
around the cut, wait for the heal, and re-admit — with zero lost VMs.
``autonomous=False`` is the baseline: same cut, diagnosis only, and the
jobs whose destinations died stay failed.

``crash_during_remediation=True`` additionally kills the controller at
the evacuation step (after the journal intent, before the action); the
driver then builds a *successor* manager over the same journal and
:meth:`~repro.incident.manager.IncidentManager.resume` must finish the
runbook without double-executing any committed step.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.errors import ControllerCrashError
from repro.hardware.cluster import Cluster
from repro.incident.correlator import RESOLVED
from repro.incident.manager import IncidentManager
from repro.incident.runbook import (
    DEFAULT_RUNBOOK,
    RESTORE_BOOT_SITE,
    RunbookStep,
)
from repro.network.degradation import DegradationEvent, NetworkChaos
from repro.orchestrator.executor import FleetConfig, FleetOrchestrator
from repro.orchestrator.scenario import _busy, _provision_fleet
from repro.recovery.checkpoints import FleetCheckpointService
from repro.recovery.failure_detector import HeartbeatMonitor
from repro.sim.trace import Tracer
from repro.storage.nfs import NfsServer
from repro.units import gbps
from repro.vmm.vm import RunState

#: Crash-injection site used by ``crash_during_remediation`` (the
#: evacuation is the long-running, most-interruptible runbook step).
CRASH_SITE = "incident.action.evacuate-affected"

#: Default crash site for ``crash_during_restore``: after the restore
#: intent is journaled, before the replacement VMs boot.
RESTORE_CRASH_SITE = RESTORE_BOOT_SITE


@dataclass
class IncidentScenarioResult:
    """Everything ``repro incident`` prints and BENCH_incident.json records."""

    jobs: int
    vms_per_job: int
    autonomous: bool
    cut_at_s: float
    heal_after_s: float
    #: Diagnosis: the classified incidents (``Incident.to_dict`` payloads).
    incidents: List[Dict[str, object]] = field(default_factory=list)
    incident_class: str = ""
    mttd_s: Optional[float] = None
    mttr_s: Optional[float] = None
    alerts: int = 0
    all_resolved: bool = False
    #: Request outcomes (spread drain + evacuations + retries).
    completed: int = 0
    aborted: int = 0
    failed: int = 0
    cancelled: int = 0
    evacuated_jobs: List[str] = field(default_factory=list)
    outcomes: List[Dict[str, object]] = field(default_factory=list)
    #: VMs left parked (lost) at the end — the headline must be empty.
    lost_vms: List[str] = field(default_factory=list)
    actions: List[str] = field(default_factory=list)
    #: Crash drill bookkeeping.
    crash_injected: bool = False
    crashed: bool = False
    resumed_incidents: int = 0
    #: (incident, step, action) triples executed more than once across
    #: the dead and successor controllers — must stay empty.
    double_executed: List[List[object]] = field(default_factory=list)
    makespan_s: float = 0.0
    final_hosts: Dict[str, List[str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def build_incident_cluster(
    nvms: int,
    spares: int = 2,
    wan_gbps: float = 1.0,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> Cluster:
    """The fleet-scenario estate plus ``spares`` empty primary-site hosts.

    The spares (``sp01``…) give the runbook somewhere local to evacuate
    to while the WAN — and with it half the Ethernet estate — is dark.
    """
    if nvms < 2:
        raise ValueError("incident scenario needs at least 2 VMs")
    cluster = Cluster(seed=seed, tracer=tracer)
    ib_names = [f"ib{i + 1:02d}" for i in range(nvms)]
    eth_names = [f"eth{i + 1:02d}" for i in range(nvms)]
    spare_names = [f"sp{i + 1:02d}" for i in range(spares)]
    local_eth = eth_names[: (nvms + 1) // 2]
    remote_eth = eth_names[(nvms + 1) // 2:]
    for name in ib_names + eth_names + spare_names:
        cluster.add_node(name)
    cluster.wire_ethernet(
        sites={
            "primary": ib_names + local_eth + spare_names,
            "backup": remote_eth,
        },
        wan_bandwidth_Bps=gbps(wan_gbps),
        wan_latency_s=5e-3,
    )
    cluster.wire_infiniband(ib_names)
    return cluster


def run_incident_scenario(
    jobs: int = 4,
    vms_per_job: int = 1,
    spares: int = 2,
    cut_at_s: float = 6.0,
    heal_after_s: float = 120.0,
    autonomous: bool = True,
    crash_during_remediation: bool = False,
    wan_gbps: float = 1.0,
    tenants: int = 2,
    link_budget_s: Optional[float] = 30.0,
    heartbeat_period_s: float = 0.5,
    probe_period_s: float = 0.25,
    max_runtime_s: float = 900.0,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    manager_out: Optional[list] = None,
    orchestrator_out: Optional[list] = None,
) -> IncidentScenarioResult:
    """Drain the fleet, cut the WAN fiber mid-drain, and report how the
    incident-response stack (or its absence) handled it.

    ``manager_out``/``orchestrator_out``, when given, receive the live
    :class:`IncidentManager` objects (dead then successor, in order) and
    the :class:`FleetOrchestrator` for tests that inspect internals.
    """
    nvms = jobs * vms_per_job
    cluster = build_incident_cluster(
        nvms, spares=spares, wan_gbps=wan_gbps, seed=seed, tracer=tracer
    )
    env = cluster.env
    if crash_during_remediation:
        cluster.faults.arm(
            CRASH_SITE,
            error=ControllerCrashError("injected crash mid-remediation"),
        )

    config = FleetConfig(link_budget_s=link_budget_s)
    orch = FleetOrchestrator(cluster, config=config)
    if orchestrator_out is not None:
        orchestrator_out.append(orch)

    records = _provision_fleet(cluster, jobs, vms_per_job, tenants)
    for job_id, tenant, job, qemus, _ in records:
        orch.register_job(job_id, job, qemus, tenant=tenant)

    # Heartbeat mesh: every node beats; phi feeds both the legacy
    # HealthMonitor evacuation path and the incident telemetry probe.
    monitor = HeartbeatMonitor(cluster)
    for node in cluster.nodes:
        env.process(
            monitor.emit_heartbeats(node, heartbeat_period_s),
            name=f"heartbeat.{node}",
        )
    monitor.start()
    orch.watch(monitor.health)

    manager = IncidentManager(
        cluster,
        orch,
        heartbeats=monitor,
        probe_period_s=probe_period_s,
        autonomous=autonomous,
    )
    manager.start()  # pre-cut samples let EWMA baselines learn "healthy"
    managers = [manager]
    if manager_out is not None:
        manager_out.append(manager)

    chaos = NetworkChaos(
        cluster,
        [
            DegradationEvent(
                at_time=cut_at_s,
                kind="drop",
                duration_s=heal_after_s,
                link_pattern="wan:*",
            )
        ],
    )

    start_at = env.now + 1.0

    def _submit_all():
        yield env.timeout(start_at - env.now)
        # The chaos clock starts with the drain: the fiber dies
        # ``cut_at_s`` seconds into the migration traffic.
        chaos.start()
        for job_id, _, _, _, dst_hosts in records:
            orch.submit(job_id, kind="spread", dst_hosts=dst_hosts)

    env.process(_submit_all(), name="incident.submit")
    env.run(until=start_at + 0.001)

    def _all_incidents():
        # Latest manager wins: a successor's rebuilt incident supersedes
        # the dead manager's (forever-REMEDIATING) copy of the same id.
        by_id: Dict[int, object] = {}
        for m in managers:
            for incident in m.incidents:
                by_id[incident.incident_id] = incident
        return [by_id[iid] for iid in sorted(by_id)]

    def _done() -> bool:
        if not all(r.terminal for r in orch.requests):
            return False
        if crash_during_remediation and not manager.crashed:
            return False  # the armed crash has not fired yet
        incidents = _all_incidents()
        if autonomous:
            # Converged once the cut was diagnosed and fully remediated.
            return bool(incidents) and all(
                i.status == RESOLVED for i in incidents
            )
        # Diagnosis-only baseline: give detection time to open the
        # incident after the last request settles.
        return bool(incidents) and env.now >= start_at + cut_at_s + 5.0

    deadline = start_at + max_runtime_s
    resumed_count = 0
    while env.now < deadline and not _done():
        if (
            crash_during_remediation
            and manager.crashed
            and len(managers) == 1
        ):
            # The dead controller stops observing; a successor rebuilds
            # the incident from the journal and finishes the runbook.
            manager.stop()
            successor = IncidentManager(
                cluster,
                orch,
                heartbeats=monitor,
                probe_period_s=probe_period_s,
                autonomous=True,
            )
            successor.start()
            resumed_count = len(successor.resume())
            managers.append(successor)
            if manager_out is not None:
                manager_out.append(successor)
        env.run(until=env.now + 0.5)

    unique_incidents = _all_incidents()

    executed: List[tuple] = []
    for m in managers:
        executed.extend(m.executor.executed)
    doubles = sorted(
        {item for item in executed if executed.count(item) > 1}
    )

    primary = unique_incidents[0] if unique_incidents else None
    statuses = [r.status for r in orch.requests]
    all_qemus = [q for _, _, _, qemus, _ in records for q in qemus]
    return IncidentScenarioResult(
        jobs=jobs,
        vms_per_job=vms_per_job,
        autonomous=autonomous,
        cut_at_s=cut_at_s,
        heal_after_s=heal_after_s,
        incidents=[i.to_dict() for i in unique_incidents],
        incident_class=primary.klass if primary is not None else "",
        mttd_s=round(primary.mttd_s, 4) if primary is not None else None,
        mttr_s=(
            round(primary.mttr_s, 4)
            if primary is not None and primary.mttr_s is not None
            else None
        ),
        alerts=sum(len(m.alerts) for m in managers),
        all_resolved=bool(unique_incidents)
        and all(i.status == RESOLVED for i in unique_incidents),
        completed=statuses.count("completed"),
        aborted=statuses.count("aborted"),
        failed=statuses.count("failed"),
        cancelled=statuses.count("cancelled"),
        evacuated_jobs=sorted(
            {
                r.job_id
                for r in orch.requests
                if r.kind == "evacuate" and r.status == "completed"
            }
        ),
        outcomes=[
            {
                "request": r.request_id,
                "job": r.job_id,
                "kind": r.kind,
                "status": r.status,
                "attempts": r.attempts,
                "error": r.error,
            }
            for r in orch.requests
        ],
        lost_vms=sorted(
            q.vm.name for q in all_qemus if q.vm.hypercall.parked
        ),
        actions=list(primary.actions) if primary is not None else [],
        crash_injected=crash_during_remediation,
        crashed=manager.crashed,
        resumed_incidents=resumed_count,
        double_executed=[list(item) for item in doubles],
        makespan_s=round(env.now - start_at, 3),
        final_hosts={
            job_id: [q.node.name for q in qemus]
            for job_id, _, _, qemus, _ in records
        },
    )


# ---------------------------------------------------------------------------
# Host-failure drill (``repro incident --kill-host`` / BENCH_hostfail.json)
# ---------------------------------------------------------------------------


def _drill_runbook():
    """DEFAULT_RUNBOOK with restores pinned to the drill's spare hosts."""
    runbook = dict(DEFAULT_RUNBOOK)
    runbook["host-failure"] = (
        RunbookStep("evacuate-host", timeout_s=300.0, retries=1),
        RunbookStep(
            "restore-from-checkpoint", {"spare_pattern": "sp*"},
            timeout_s=600.0, retries=1, restores_service=True,
        ),
    )
    return runbook


@dataclass
class HostFailureScenarioResult:
    """Everything the host-failure drill prints and BENCH_hostfail.json
    records."""

    jobs: int
    vms_per_job: int
    autonomous: bool
    kill_host: str
    kill_at_s: float
    #: When the host actually died (``kill_after_commit`` can push the
    #: kill past ``kill_at_s``), relative to the drain start.
    killed_at_s: Optional[float] = None
    checkpoint_period_s: float = 0.0
    #: Fiber cut overlapping the host failure (None = host failure only).
    cut_at_s: Optional[float] = None
    incidents: List[Dict[str, object]] = field(default_factory=list)
    incident_classes: List[str] = field(default_factory=list)
    alerts: int = 0
    all_resolved: bool = False
    #: Proactive checkpointing accounting.
    generations_committed: int = 0
    checkpoint_skips: int = 0
    #: RPO of the worst restored job (failure instant back to the restored
    #: generation's consistency point) — must stay ≤ the checkpoint period.
    rpo_s: Optional[float] = None
    rpo_bound_s: float = 0.0
    #: First anomaly to restore commit of the slowest restored job.
    restore_rto_s: Optional[float] = None
    restored_jobs: List[str] = field(default_factory=list)
    #: Replacement VMs adopted (not re-booted) by a resumed restore.
    adopted_vms: List[str] = field(default_factory=list)
    #: VMs that died with the host at kill time.
    vms_lost_at_kill: List[str] = field(default_factory=list)
    #: VMs still dead/parked at the end — the headline must be empty.
    lost_vms: List[str] = field(default_factory=list)
    completed: int = 0
    aborted: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Requests never settled (baseline: work stranded behind dead VMs).
    stranded: int = 0
    evacuated_jobs: List[str] = field(default_factory=list)
    crash_injected: bool = False
    crash_site: str = ""
    crashed: bool = False
    resumed_incidents: int = 0
    double_executed: List[List[object]] = field(default_factory=list)
    #: (incident, job) pairs with more than one restore-commit — the
    #: no-double-restore witness, must stay empty.
    double_restored: List[List[object]] = field(default_factory=list)
    #: Spare hosts ever leased to two incidents at once — must stay empty.
    spare_double_leases: List[List[object]] = field(default_factory=list)
    makespan_s: float = 0.0
    outcomes: List[Dict[str, object]] = field(default_factory=list)
    final_hosts: Dict[str, List[str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def run_host_failure_scenario(
    jobs: int = 4,
    vms_per_job: int = 1,
    spares: int = 2,
    kill_at_s: float = 12.0,
    kill_host: Optional[str] = None,
    kill_after_commit: bool = True,
    checkpoint_period_s: float = 20.0,
    nfs_gbps: float = 40.0,
    cut_at_s: Optional[float] = None,
    heal_after_s: float = 120.0,
    autonomous: bool = True,
    crash_during_restore: bool = False,
    crash_site: str = RESTORE_CRASH_SITE,
    wan_gbps: float = 1.0,
    tenants: int = 2,
    link_budget_s: Optional[float] = 30.0,
    heartbeat_period_s: float = 0.5,
    probe_period_s: float = 0.25,
    max_runtime_s: float = 900.0,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    manager_out: Optional[list] = None,
    orchestrator_out: Optional[list] = None,
    service_out: Optional[list] = None,
) -> HostFailureScenarioResult:
    """Kill a host without warning mid-drain; report how proactive
    checkpointing + checkpoint-restore remediation handled it.

    The fleet checkpoint service snapshots every eligible job each
    ``checkpoint_period_s`` onto an NFS store with a dedicated
    ``nfs_gbps`` link.  ``kill_at_s`` seconds into the drain
    ``kill_host`` (default: the first job's landing host — that job
    drains fast and sits still while the WAN jobs are mid-flight) dies
    hard — no WARNING, no drain window — taking its VMs with it.  With
    ``kill_after_commit`` the kill additionally waits until the victim's
    jobs hold a committed checkpoint generation: the failure is still
    unannounced to the controller, the *drill* just arms it where the
    restore path (rather than the no-checkpoint error path) is
    exercised.  The incident stack must classify the heartbeat silence
    as ``host-failure``, fall through the (impossible) evacuation, and
    restore the dead jobs from their last committed checkpoint
    generation on spare capacity leased through the
    :class:`~repro.orchestrator.state.SpareArbiter`.

    ``cut_at_s`` additionally cuts the WAN fiber (a second incident whose
    evacuations compete for the same spares); ``crash_during_restore``
    kills the controller at ``crash_site`` and a successor must resume to
    the same outcome without double-restoring.
    """
    nvms = jobs * vms_per_job
    cluster = build_incident_cluster(
        nvms, spares=spares, wan_gbps=wan_gbps, seed=seed, tracer=tracer
    )
    env = cluster.env
    if crash_during_restore:
        cluster.faults.arm(
            crash_site,
            error=ControllerCrashError(f"injected crash at {crash_site}"),
        )

    config = FleetConfig(link_budget_s=link_budget_s)
    orch = FleetOrchestrator(cluster, config=config)
    if orchestrator_out is not None:
        orchestrator_out.append(orch)
    # The checkpoint store hangs off the enclosure's converged fabric,
    # not the clients' 10 GbE links: a generation's write window must fit
    # well inside the checkpoint period.
    nfs = NfsServer(env, bandwidth_Bps=gbps(nfs_gbps) * 0.7)
    service = FleetCheckpointService(
        cluster, orch.store, nfs, orch.journal, period_s=checkpoint_period_s
    )
    services = [service]
    if service_out is not None:
        service_out.append(service)

    records = _provision_fleet(cluster, jobs, vms_per_job, tenants)
    for job_id, tenant, job, qemus, _ in records:
        # rank_main lets a checkpoint restore relaunch the SPMD program.
        orch.register_job(job_id, job, qemus, tenant=tenant, rank_main=_busy)

    monitor = HeartbeatMonitor(cluster)
    for node in cluster.nodes:
        env.process(
            monitor.emit_heartbeats(node, heartbeat_period_s),
            name=f"heartbeat.{node}",
        )
    monitor.start()
    orch.watch(monitor.health)

    runbook = _drill_runbook()
    manager = IncidentManager(
        cluster,
        orch,
        heartbeats=monitor,
        probe_period_s=probe_period_s,
        autonomous=autonomous,
        checkpoints=service,
        runbook=runbook,
    )
    manager.start()
    managers = [manager]
    if manager_out is not None:
        manager_out.append(manager)
    service.start()

    chaos = None
    if cut_at_s is not None:
        chaos = NetworkChaos(
            cluster,
            [
                DegradationEvent(
                    at_time=cut_at_s,
                    kind="drop",
                    duration_s=heal_after_s,
                    link_pattern="wan:*",
                )
            ],
        )

    victim_ref: List[str] = []
    if kill_host is not None:
        cluster.node(kill_host)  # existence check before the drill starts
        victim_ref.append(kill_host)

    start_at = env.now + 1.0
    vms_lost_at_kill: List[str] = []
    killed_at: List[float] = []

    def _committed_jobs() -> set:
        return {
            r.payload.get("job")
            for r in orch.journal.records
            if r.kind == "checkpoint-commit"
        }

    def _victim_covered(host: str) -> bool:
        """Every job on ``host`` holds a committed generation."""
        on_victim = [r.job_id for r in orch.store.jobs_on(host)]
        return bool(on_victim) and set(on_victim) <= _committed_jobs()

    def _pick_victim() -> Optional[str]:
        """First landed job with a committed generation → its host.

        The orchestrator places spread drains by capacity, not by the
        naive destination list, so the victim cannot be named up front.
        Every job co-located on the candidate host must be covered too —
        the kill takes the whole host, not just the picked job.
        """
        committed = _committed_jobs()
        for job_id in sorted(orch.store.jobs):
            if job_id not in committed:
                continue
            record = orch.store.jobs[job_id]
            if record.busy:  # mid-migration: not a restore-path drill
                continue
            hosts = record.hosts()
            if not hosts or any(cluster.node(h).failed for h in hosts):
                continue
            host = hosts[0]
            if all(
                r.job_id in committed and not r.busy
                for r in orch.store.jobs_on(host)
            ):
                return host
        return None

    def _submit_all():
        yield env.timeout(start_at - env.now)
        if chaos is not None:
            chaos.start()
        for job_id, _, _, _, dst_hosts in records:
            orch.submit(job_id, kind="spread", dst_hosts=dst_hosts)

    def _kill():
        yield env.timeout(start_at + kill_at_s - env.now)
        if kill_after_commit:
            # Arm the failure only once the victim's jobs are coverable:
            # the drill measures the restore path, not the (separately
            # tested) no-checkpoint error path.  Give up at half the
            # runtime budget so a broken schedule still kills and fails
            # the run visibly instead of hanging.
            give_up = start_at + max_runtime_s / 2.0
            if victim_ref:
                while not _victim_covered(victim_ref[0]) and env.now < give_up:
                    yield env.timeout(0.5)
            else:
                while _pick_victim() is None and env.now < give_up:
                    yield env.timeout(0.5)
                picked = _pick_victim()
                victim_ref.append(picked if picked else records[0][4][0])
            yield env.timeout(1.0)
        elif not victim_ref:
            victim_ref.append(records[0][4][0])
        killed_at.append(env.now)
        vms_lost_at_kill.extend(cluster.fail_host(victim_ref[0]))

    env.process(_submit_all(), name="hostfail.submit")
    env.process(_kill(), name="hostfail.kill")
    env.run(until=start_at + 0.001)

    def _all_incidents():
        by_id: Dict[int, object] = {}
        for m in managers:
            for incident in m.incidents:
                by_id[incident.incident_id] = incident
        return [by_id[iid] for iid in sorted(by_id)]

    def _settled(request) -> bool:
        # The baseline has no restore path: a request stuck behind a dead
        # VM will never run; count it stranded instead of waiting it out.
        return request.terminal or (
            not autonomous and request.defer_reason == "vm-down"
        )

    def _done() -> bool:
        if not killed_at:
            return False
        if not all(_settled(r) for r in orch.requests):
            return False
        if crash_during_restore and not (
            any(m.crashed for m in managers)
            or any(s.crashed for s in services)
        ):
            return False  # the armed crash has not fired yet
        incidents = _all_incidents()
        if not incidents:
            return False
        if autonomous:
            # An unrelated earlier incident (e.g. drain congestion) being
            # resolved must not end the drill before the heartbeat
            # silence is even detectable: require the victim's own
            # host-failure incident.
            victim = victim_ref[0]
            if not any(
                i.klass == "host-failure"
                and victim in (i.suspect_hosts | i.hosts)
                for i in incidents
            ):
                return False
            return all(i.status == RESOLVED for i in incidents)
        return env.now >= killed_at[0] + 15.0

    deadline = start_at + max_runtime_s
    resumed_count = 0
    while env.now < deadline and not _done():
        if manager.crashed and len(managers) == 1:
            # Controller succession: rebuild incidents from the journal
            # and finish the runbooks without double-restoring.
            manager.stop()
            successor = IncidentManager(
                cluster,
                orch,
                heartbeats=monitor,
                probe_period_s=probe_period_s,
                autonomous=True,
                checkpoints=services[-1],
                runbook=runbook,
            )
            successor.start()
            resumed_count = len(successor.resume())
            managers.append(successor)
            if manager_out is not None:
                manager_out.append(successor)
        if services[-1].crashed:
            # Checkpoint-service succession: a fresh service resumes the
            # generation numbering from the journal; the open intent of
            # the dead one never commits.
            dead = services[-1]
            dead.stop()
            successor_service = FleetCheckpointService(
                cluster, orch.store, nfs, orch.journal,
                period_s=checkpoint_period_s,
            )
            successor_service.start()
            services.append(successor_service)
            if service_out is not None:
                service_out.append(successor_service)
        env.run(until=env.now + 0.5)

    # Let an in-flight checkpoint tick finish before folding final VM
    # state: its parked VMs resume at tick end and must not read as lost.
    drain_until = env.now + 120.0
    while (
        any(rec.busy for rec in orch.store.jobs.values())
        and env.now < drain_until
    ):
        env.run(until=env.now + 0.5)
    # Sim time has not advanced since the busy check, so no new tick can
    # have started: stopping here never interrupts a parked fleet.
    for s in services:
        s.stop()

    unique_incidents = _all_incidents()
    executed: List[tuple] = []
    for m in managers:
        executed.extend(m.executor.executed)
    doubles = sorted({item for item in executed if executed.count(item) > 1})

    restore_commits = [
        r.payload
        for r in orch.journal.records
        if r.kind == "restore-commit"
    ]
    commit_counts: Dict[tuple, int] = {}
    for payload in restore_commits:
        key = (payload.get("incident"), payload.get("job"))
        commit_counts[key] = commit_counts.get(key, 0) + 1
    # True RPO: the drill knows the exact failure instant; measure lost
    # work from there back to the restored generation's consistency
    # point.  (The journal's per-restore ``rpo_s`` is the controller's
    # conservative estimate from the first detected anomaly instead.)
    consistency_by_gen = {
        (r.payload.get("job"), r.payload.get("generation")):
            float(r.payload.get("consistency_at", 0.0))
        for r in orch.journal.records
        if r.kind == "checkpoint-commit"
    }
    rpos = []
    for payload in restore_commits:
        consistency = consistency_by_gen.get(
            (payload.get("job"), payload.get("generation"))
        )
        if consistency is not None and killed_at:
            rpos.append(max(killed_at[0] - consistency, 0.0))
        else:
            rpos.append(float(payload.get("rpo_s", 0.0)))
    rtos = [float(p.get("rto_s", 0.0)) for p in restore_commits]

    lost: List[str] = []
    for job_id in sorted(orch.store.jobs):
        for q in orch.store.jobs[job_id].qemus:
            if q.vm.state is RunState.SHUTOFF or (
                q.vm.hypercall is not None and q.vm.hypercall.parked
            ):
                lost.append(q.vm.name)

    statuses = [r.status for r in orch.requests]
    return HostFailureScenarioResult(
        jobs=jobs,
        vms_per_job=vms_per_job,
        autonomous=autonomous,
        kill_host=victim_ref[0] if victim_ref else "",
        kill_at_s=kill_at_s,
        killed_at_s=(
            round(killed_at[0] - start_at, 3) if killed_at else None
        ),
        checkpoint_period_s=checkpoint_period_s,
        cut_at_s=cut_at_s,
        incidents=[i.to_dict() for i in unique_incidents],
        incident_classes=sorted({i.klass for i in unique_incidents}),
        alerts=sum(len(m.alerts) for m in managers),
        all_resolved=bool(unique_incidents)
        and all(i.status == RESOLVED for i in unique_incidents),
        generations_committed=sum(
            1 for r in orch.journal.records if r.kind == "checkpoint-commit"
        ),
        checkpoint_skips=sum(len(s.skips) for s in services),
        rpo_s=round(max(rpos), 4) if rpos else None,
        rpo_bound_s=checkpoint_period_s,
        restore_rto_s=round(max(rtos), 4) if rtos else None,
        restored_jobs=sorted(
            {str(p.get("job")) for p in restore_commits}
        ),
        adopted_vms=sorted(
            {str(v) for p in restore_commits for v in p.get("adopted", ())}
        ),
        vms_lost_at_kill=sorted(vms_lost_at_kill),
        lost_vms=sorted(lost),
        completed=statuses.count("completed"),
        aborted=statuses.count("aborted"),
        failed=statuses.count("failed"),
        cancelled=statuses.count("cancelled"),
        stranded=sum(1 for r in orch.requests if not r.terminal),
        evacuated_jobs=sorted(
            {
                r.job_id
                for r in orch.requests
                if r.kind == "evacuate" and r.status == "completed"
            }
        ),
        crash_injected=crash_during_restore,
        crash_site=crash_site if crash_during_restore else "",
        crashed=any(m.crashed for m in managers)
        or any(s.crashed for s in services),
        resumed_incidents=resumed_count,
        double_executed=[list(item) for item in doubles],
        double_restored=sorted(
            [list(k) for k, v in commit_counts.items() if v > 1]
        ),
        spare_double_leases=[list(d) for d in orch.arbiter.double_leases],
        makespan_s=round(env.now - start_at, 3),
        outcomes=[
            {
                "request": r.request_id,
                "job": r.job_id,
                "kind": r.kind,
                "status": r.status,
                "attempts": r.attempts,
                "error": r.error,
            }
            for r in orch.requests
        ],
        final_hosts={
            job_id: [q.node.name for q in record.qemus]
            for job_id, record in sorted(orch.store.jobs.items())
        },
    )
