#!/usr/bin/env python
"""The paper's Figure 5 script, nearly line for line.

Shows the low-level SymVirt controller API that Ninja migration is built
from — useful when you need custom orchestration instead of
:class:`repro.NinjaMigration` (which adds planning, validation, and the
phase accounting).

Run:  python examples/symvirt_script.py
"""

import repro
from repro import workloads
from repro.symvirt import Controller, SymVirtConfig
from repro.units import GB


def main() -> None:
    cluster = repro.build_agc_cluster(ib_nodes=2, eth_nodes=2)
    env = cluster.env

    def experiment():
        vms = repro.provision_vms(cluster, ["ib01", "ib02"])
        job = repro.create_job(cluster, vms, procs_per_vm=1)
        yield from job.init()
        job.launch(
            workloads.BcastReduceLoop(iterations=20, bytes_per_node=2 * GB).rank_main
        )
        yield env.timeout(10.0)
        job.request_checkpoint()  # the cloud scheduler's trigger event

        config = SymVirtConfig.from_cluster(cluster)

        # ### 1. fallback migration  (Figure 5, lines 4–16)
        ctl = Controller(cluster, config.vms_on(config.ib_hostlist))

        # 1a. device detach
        yield from ctl.wait_all()
        yield from ctl.device_detach(tag="vf0")
        yield from ctl.signal()

        # 1b. migration
        yield from ctl.wait_all()
        yield from ctl.migration(config.ib_hostlist, config.eth_hostlist)
        yield from ctl.signal()
        yield from ctl.quit()
        print(f"[{env.now:7.1f}s] fallback done; VMs on "
              f"{[q.node.name for q in vms]}")
        yield env.timeout(20.0)

        job.request_checkpoint()

        # ### 2. recovery migration  (Figure 5, lines 18–33).
        # Figure 5 splits this into two controller blocks — one SymVirt
        # round each: 2a migrates while the guests are parked in the
        # checkpoint callback, 2b re-attaches while they are parked in
        # the continue callback.
        ctl = Controller(cluster, config.vms_on(config.eth_hostlist))

        # 2a. migration
        yield from ctl.wait_all()
        yield from ctl.migration(config.eth_hostlist, config.ib_hostlist)
        yield from ctl.signal()
        yield from ctl.quit()

        # 2b. device attach
        ctl = Controller(cluster, config.vms_on(config.ib_hostlist))
        yield from ctl.wait_all()
        yield from ctl.device_attach(host="04:00.0", tag="vf0")
        yield from ctl.signal()
        ctl.close()
        print(f"[{env.now:7.1f}s] recovery done; VMs on "
              f"{[q.node.name for q in vms]}")

        yield job.wait()
        print(f"[{env.now:7.1f}s] job finished; "
              f"transports: {job.transports_in_use()}")

    env.process(experiment())
    env.run()


if __name__ == "__main__":
    main()
