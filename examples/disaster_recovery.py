#!/usr/bin/env python
"""Use case: disaster recovery (Section II-A).

"VMs are evacuated from a disaster-affected data center to a safe data
center before those VMs crash."  A typhoon warning gives the primary
(InfiniBand) site a 5-minute evacuation deadline; the safe site has only
Ethernet.  Interconnect-transparent migration widens the set of
acceptable destination sites — the job survives and keeps running over
TCP, and the example verifies the evacuation beat the deadline.

Run:  python examples/disaster_recovery.py
"""

import repro
from repro import workloads
from repro.units import GB


DEADLINE_S = 300.0  # site must be clear 5 minutes after the warning


def main() -> None:
    cluster = repro.build_agc_cluster(ib_nodes=4, eth_nodes=4)
    env = cluster.env

    def experiment():
        vms = repro.provision_vms(cluster, ["ib01", "ib02", "ib03", "ib04"])
        job = repro.create_job(cluster, vms, procs_per_vm=8)
        yield from job.init()
        workload = workloads.BcastReduceLoop(
            iterations=30, bytes_per_node=4 * GB, procs_per_vm=8
        )
        job.launch(workload.rank_main)
        scheduler = repro.CloudScheduler(cluster)

        # Normal operation until the warning arrives.
        yield env.timeout(90.0)
        warning_at = env.now
        print(f"[{env.now:7.1f}s] ⚠ disaster warning — evacuation deadline "
              f"t={warning_at + DEADLINE_S:.0f}s")

        plan = scheduler.plan_fallback(vms, label="evacuation")
        result = yield from scheduler.run_now("disaster", plan, job)
        evacuated_at = env.now

        print(f"[{env.now:7.1f}s] evacuation complete: {result.breakdown}")
        slack = warning_at + DEADLINE_S - evacuated_at
        print(f"           beat the deadline by {slack:.0f} s")
        assert slack > 0, "evacuation missed the deadline!"
        assert all(not cluster.node(h).vms for h in ("ib01", "ib02", "ib03", "ib04"))

        # The affected site goes dark; the job must not notice.
        for host in ("ib01", "ib02", "ib03", "ib04"):
            port = cluster.eth_fabric.port(host)
            cluster.eth_fabric.unplug(port)
        print(f"[{env.now:7.1f}s] primary site offline; job continues on "
              f"{sorted({q.node.name for q in vms})}")

        yield job.wait()
        print(f"[{env.now:7.1f}s] job finished without restarting a process:")
        for sample in workload.series.samples[-3:]:
            print(f"           step {sample.step}: {sample.elapsed_s:.1f}s")

    env.process(experiment())
    env.run()


if __name__ == "__main__":
    main()
