#!/usr/bin/env python
"""Transactional Ninja migration under injected faults.

Three scenarios on one 2+2 cluster pattern (fresh cluster each):

1. a **fatal** fault in the attach phase — the sequence aborts, the
   compensation stack rolls the world back (VMs return home, origin HCAs
   re-attach, guests resume), and the job recovers to openib;
2. a **transient** QMP failure during migration — absorbed by bounded
   retry with exponential backoff, sequence completes;
3. a **hung** detach phase — the per-phase timeout interrupts it and the
   rollback restores the original placement.

Run:  python examples/fault_injection.py
"""

from repro import CloudScheduler, build_agc_cluster, create_job, provision_vms
from repro import workloads
from repro.core.faults import RetryPolicy
from repro.core.ninja import NinjaMigration
from repro.errors import QmpError
from repro.units import GB, GiB


def build():
    cluster = build_agc_cluster(ib_nodes=2, eth_nodes=2)
    vms = provision_vms(cluster, ["ib01", "ib02"], memory_bytes=2 * GiB)
    job = create_job(cluster, vms, procs_per_vm=1)
    env = cluster.env

    def bootstrap():
        yield from job.init()
        job.launch(
            workloads.BcastReduceLoop(iterations=200, bytes_per_node=1 * GB).rank_main
        )
        yield env.timeout(10.0)

    env.run(until=env.process(bootstrap()))
    return cluster, vms, job


def report(title, cluster, vms, job, result):
    print(f"--- {title}")
    print(f"  status:   {result.status}"
          + (f" (failed in {result.failed_phase!r})" if result.aborted else ""))
    if result.retries:
        print(f"  retries:  {result.retries}")
    if result.rollback_actions:
        print(f"  rollback: {' -> '.join(result.rollback_actions)}")
    cluster.env.run(until=cluster.env.now + 60.0)  # link training + BTL rebuild
    print(f"  VMs:      {[(q.vm.name, q.node.name, q.vm.state.name) for q in vms]}")
    print(f"  job:      {job.live_ranks}/{job.size} ranks, "
          f"transports {job.transports_in_use()}")
    print(f"  trace:    {cluster.tracer.count('ninja', 'retry')} retries, "
          f"{cluster.tracer.count('ninja', 'aborted')} aborts recorded\n")


def scenario_fatal_attach():
    cluster, vms, job = build()
    # Default error is a non-transient FaultInjectionError -> abort + rollback.
    cluster.faults.arm("ninja.attach")
    scheduler = CloudScheduler(cluster)
    plan = scheduler.ninja.self_migration_plan(vms, attach_ib=True)

    def main():
        return (yield from scheduler.run_now("demo", plan, job))

    result = cluster.env.run(until=cluster.env.process(main()))
    report("fatal fault in attach: abort + rollback", cluster, vms, job, result)


def scenario_transient_migration():
    cluster, vms, job = build()
    # A QmpError is transient: absorbed by retry with exponential backoff.
    cluster.faults.arm("qmp.migrate", error=QmpError("GenericError", "socket reset"))
    ninja = NinjaMigration(
        cluster, retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.5)
    )
    plan = ninja.fallback_plan(vms, ["eth01", "eth02"])

    def main():
        return (yield from ninja.execute(job, plan))

    result = cluster.env.run(until=cluster.env.process(main()))
    report("transient QMP fault: absorbed by retry", cluster, vms, job, result)


def scenario_hung_detach_timeout():
    cluster, vms, job = build()
    cluster.faults.arm("ninja.detach", hang=True)
    ninja = NinjaMigration(cluster, phase_timeout_s={"detach": 20.0})
    plan = ninja.fallback_plan(vms, ["eth01", "eth02"])

    def main():
        return (yield from ninja.execute(job, plan))

    result = cluster.env.run(until=cluster.env.process(main()))
    report("hung detach: per-phase timeout + rollback", cluster, vms, job, result)


if __name__ == "__main__":
    scenario_fatal_attach()
    scenario_transient_migration()
    scenario_hung_detach_timeout()
