#!/usr/bin/env python
"""Quickstart: one interconnect-transparent fallback migration.

Builds the paper's heterogeneous testbed (4 InfiniBand + 4 Ethernet
nodes), launches a 4-rank MPI job over VMM-bypass InfiniBand, then uses
Ninja migration to move all four VMs to the Ethernet cluster while the
job keeps running — showing the transport switch and the overhead
breakdown the paper reports.

Run:  python examples/quickstart.py
"""

import repro
from repro import workloads
from repro.units import GB


def main() -> None:
    # 1. The AGC testbed: IB-cabled nodes ib01..ib04, Ethernet-only
    #    nodes eth01..eth04, all sharing the 10 GbE network.
    cluster = repro.build_agc_cluster(ib_nodes=4, eth_nodes=4)
    env = cluster.env

    def experiment():
        # 2. One 8-vCPU / 20 GB VM per IB node, HCA passed through
        #    (VMM-bypass) and already linked up.
        vms = repro.provision_vms(cluster, ["ib01", "ib02", "ib03", "ib04"])

        # 3. An ft-enable-cr MPI job with the SymVirt coordinator
        #    (libsymvirt.so) installed, one rank per VM.
        job = repro.create_job(cluster, vms, procs_per_vm=1)
        yield from job.init()
        print(f"[{env.now:7.1f}s] job up, transports: {job.transports_in_use()}")

        # 4. A bandwidth-hungry workload: repeated 8 GB bcast+reduce.
        workload = workloads.BcastReduceLoop(iterations=8, bytes_per_node=8 * GB)
        job.launch(workload.rank_main)
        yield env.timeout(30.0)

        # 5. The cloud scheduler triggers a fallback to the Ethernet
        #    cluster (e.g. scheduled maintenance on the IB enclosure).
        scheduler = repro.CloudScheduler(cluster)
        plan = scheduler.plan_fallback(vms)
        print(f"[{env.now:7.1f}s] maintenance trigger:\n{plan.describe()}")
        result = yield from scheduler.run_now("maintenance", plan, job)

        print(f"[{env.now:7.1f}s] Ninja migration complete: {result.breakdown}")
        print("phase timeline:")
        print(result.timeline.render())
        yield env.timeout(5.0)
        print(f"[{env.now:7.1f}s] transports now: {job.transports_in_use()}")
        print(f"           VM placement: {[q.node.name for q in vms]}")

        # 6. The job finishes without ever restarting a process.
        yield job.wait()
        print(f"[{env.now:7.1f}s] job finished; per-iteration times:")
        print(workload.series.render())

    env.process(experiment())
    env.run()


if __name__ == "__main__":
    main()
