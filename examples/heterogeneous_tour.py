#!/usr/bin/env python
"""A grand tour: one MPI job crosses three interconnects, zero restarts.

Section VI claims the mechanism has "no limitation in supported devices,
e.g., Myrinet and other devices."  This example proves it end to end:
a stencil job starts on the InfiniBand rack, falls back to the Myrinet
rack, then to plain Ethernet, and finally recovers to InfiniBand — with
the transport re-selected by BTL exclusivity at every hop and a Gantt
chart of each Ninja sequence.

Run:  python examples/heterogeneous_tour.py
"""

import repro
from repro import workloads
from repro.analysis.gantt import ninja_gantt
from repro.core.plan import MigrationPlan
from repro.hardware.cluster import build_heterogeneous_cluster


def main() -> None:
    cluster = build_heterogeneous_cluster(ib_nodes=2, myrinet_nodes=2, eth_nodes=2)
    env = cluster.env

    def experiment():
        vms = repro.provision_vms(cluster, ["ib01", "ib02"])
        job = repro.create_job(cluster, vms, procs_per_vm=4)
        yield from job.init()
        workload = workloads.StencilWorkload(
            workloads.StencilConfig(global_points=16_384, iterations=2000)
        )
        job.launch(workload.rank_main)
        ninja = repro.NinjaMigration(cluster)
        print(f"[{env.now:7.1f}s] start: transports {job.transports_in_use()}")

        legs = (
            ("Myrinet rack", ["myri01", "myri02"]),
            ("Ethernet rack", ["eth01", "eth02"]),
            ("back to InfiniBand", ["ib01", "ib02"]),
        )
        for label, dst in legs:
            yield env.timeout(30.0)
            plan = MigrationPlan.build(cluster, vms, dst, attach_ib=None, label=label)
            result = yield from ninja.execute(job, plan)
            yield env.timeout(3.0)
            print(f"\n[{env.now:7.1f}s] → {label}: {result.breakdown}")
            print(ninja_gantt(result, width=60))
            print(f"           transports now: {job.transports_in_use()}")

        yield env.timeout(20.0)
        stats = job.comm_stats()
        print("\nper-transport traffic over the whole tour:")
        for name, nbytes in sorted(stats.items(), key=lambda kv: -kv[1]):
            print(f"  {name:<8} {nbytes / 2**30:8.2f} GiB")
        completed = {
            rank: count for rank, count in sorted(workload.completed.items())
        }
        print(f"\niterations completed per rank so far: "
              f"{min(completed.values(), default=0) if completed else 'job still running'}")
        assert job.live_ranks == job.size, "ranks must survive the whole tour"
        print("all ranks alive across three interconnect switches ✓")

    env.process(experiment())
    env.run(until=600.0)


if __name__ == "__main__":
    main()
