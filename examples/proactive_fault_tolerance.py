#!/usr/bin/env python
"""Use case: proactive fault tolerance via coordinated VM checkpoints.

Section II-A: "using proactive and reactive fault tolerant systems …
we can restart VMs on an Ethernet cluster from checkpointed VM images on
an Infiniband cluster."

An MPI job on the InfiniBand cluster is checkpointed to the NFS store
every ~3 simulated minutes while it keeps running (the SymVirt park
makes the images globally consistent).  When the IB site then fails, the
VMs are rebuilt on the Ethernet cluster from the latest images and the
job is relaunched from its last checkpoint boundary — losing only the
work since that checkpoint (classic BLCR-style restart semantics).

Run:  python examples/proactive_fault_tolerance.py
"""

import repro
from repro import workloads
from repro.analysis.gantt import render_spans
from repro.core.checkpointing import ProactiveCheckpoint
from repro.storage.nfs import NfsServer
from repro.units import GB, GiB


CHECKPOINT_PERIOD_S = 180.0
FAILURE_AT_S = 500.0


def main() -> None:
    cluster = repro.build_agc_cluster(ib_nodes=2, eth_nodes=2)
    env = cluster.env
    store = NfsServer(env, capacity_bytes=512 * GiB)
    ckpt = ProactiveCheckpoint(cluster, store)
    checkpoint_log = []

    def experiment():
        vms = repro.provision_vms(cluster, ["ib01", "ib02"])
        job = repro.create_job(cluster, vms, procs_per_vm=4)
        yield from job.init()
        workload = workloads.BcastReduceLoop(
            iterations=200, bytes_per_node=4 * GB, procs_per_vm=4
        )
        job.launch(workload.rank_main)

        # Periodic checkpointing until the site fails.
        while env.now + CHECKPOINT_PERIOD_S < FAILURE_AT_S:
            yield env.timeout(CHECKPOINT_PERIOD_S)
            result = yield from ckpt.execute(job, vms)
            checkpoint_log.append(result)
            last_step = workload.series.samples[-1].step if workload.series.samples else 0
            print(
                f"[{env.now:7.1f}s] checkpoint #{len(checkpoint_log)}: "
                f"{result.total_s:.1f}s total "
                f"({result.snapshot_s:.1f}s snapshot, "
                f"{sum(s.wire_bytes for s in result.snapshots.values())/2**30:.1f} GiB "
                f"to NFS), job at step {last_step}"
            )

        # The IB site fails hard.
        yield env.timeout(max(FAILURE_AT_S - env.now, 1.0))
        last_step = workload.series.samples[-1].step if workload.series.samples else 0
        print(f"[{env.now:7.1f}s] 💥 primary site failure at step {last_step}")
        for q in vms:
            q.shutdown()

        # Rebuild from the newest images on the Ethernet cluster.
        latest = checkpoint_log[-1]
        restored = yield from ckpt.restore(
            latest.image_names, ["eth01", "eth02"], name_suffix="-r"
        )
        print(f"[{env.now:7.1f}s] restored {len(restored)} VMs on "
              f"{[q.node.name for q in restored]}")

        # Relaunch the job from the checkpoint boundary (work since the
        # last checkpoint is recomputed — the cost of proactive FT).
        job2 = repro.create_job(cluster, restored, procs_per_vm=4)
        yield from job2.init()
        resumed = workloads.BcastReduceLoop(
            iterations=20, bytes_per_node=4 * GB, procs_per_vm=4
        )
        job2.launch(resumed.rank_main)
        yield job2.wait()
        print(f"[{env.now:7.1f}s] job resumed and completed on the backup "
              f"site (mean step {sum(resumed.series.elapsed())/20:.1f}s over TCP)")

        # Visualize the last checkpoint sequence.
        spans = [
            (s.name, s.start, s.end)
            for s in latest.timeline.spans
            if s.end is not None and s.end > s.start
        ]
        print("\nlast checkpoint sequence:")
        print(render_spans([("checkpoint", spans)], width=60))

    env.process(experiment())
    env.run()


if __name__ == "__main__":
    main()
