#!/usr/bin/env python
"""Degraded-WAN migration: throttle, fall back to postcopy, survive a drop.

Act 1 — the degraded path, up close.  A live VM rewrites a hot 512 MiB
working set faster than the 1.3 Gbps migration thread can ship it, on a
network suffering 40 % packet loss.  Plain precopy would never converge:
the adaptive policy first throttles the guest (QEMU-style auto-converge),
then gives up on convergence and switches to postcopy.  Mid-drain, the
source's uplink goes dark for three seconds — the stream pauses, then
recovers from the received-page bitmap instead of re-sending RAM.

Act 2 — the same network, a live MPI job.  Ninja evacuation to the
Ethernet cluster under the same policy: SymVirt parks the ranks first,
so dirtying stops and precopy converges without needing the fallback —
the policy only escalates when it must.  The job resumes with its BTL
re-selected (openib → tcp) and runs to completion.

Run:  python examples/degraded_wan.py
"""

import repro
from repro.guestos.process import MemoryWriter
from repro.network.degradation import DegradationEvent, NetworkChaos
from repro.units import GiB, MiB
from repro.vmm.guest_memory import PageClass
from repro.vmm.policy import MigrationPolicy
from repro.vmm.qemu import QemuProcess


def rank_main(proc, comm):
    for _ in range(40):
        yield proc.vm.compute(1.0, nthreads=1)
        yield from comm.barrier()
    return None


POLICY = MigrationPolicy.adaptive(
    postcopy="fallback",
    throttle_max=0.5,
    non_convergence_rounds=1,
    recover_max_attempts=5,
    recover_backoff_s=1.0,
)


def act1_hot_vm(cluster):
    """Migrate a live, hot VM across the lossy network."""
    env = cluster.env
    hot = QemuProcess(cluster, cluster.node("ib01"), "hotvm", memory_bytes=4 * GiB)
    hot.boot()
    hot.vm.memory.write(1 * GiB, 1 * GiB, PageClass.DATA)
    writer = MemoryWriter(
        hot.vm, 512 * MiB, page_class=PageClass.DATA,
        chunk_bytes=2 * MiB, write_Bps=2 * GiB,
    )
    env.process(writer.run())
    print(f"[{env.now:7.1f}s] act 1: hotvm dirties 512 MiB at 2 GiB/s — "
          "precopy alone cannot converge")

    job = hot.migrate(cluster.node("ib02"), policy=POLICY)

    def drop_mid_drain():
        # A 3 s outage on the source's uplink, timed into the drain.
        while job.stats.mode != "postcopy":
            yield env.timeout(0.2)
        yield env.timeout(0.5)
        print(f"[{env.now:7.1f}s] chaos: ib01 uplink dark for 3 s mid-drain")
        NetworkChaos(
            cluster,
            [DegradationEvent(at_time=0.0, kind="drop", duration_s=3.0,
                              link_pattern="ib01*")],
        ).start()

    env.process(drop_mid_drain())
    stats = yield job.done
    writer.stop()

    print(
        f"[{env.now:7.1f}s] hotvm migrated: mode={stats.mode} "
        f"rounds={stats.iterations} throttle_kicks={stats.auto_converge_kicks} "
        f"stream_drops={stats.stream_drops} recoveries={stats.recoveries} "
        f"downtime={stats.downtime_s * 1000:.1f} ms"
    )
    assert stats.auto_converge_kicks >= 1, "expected auto-converge first"
    assert stats.mode == "postcopy", "expected escalation to postcopy"
    assert stats.stream_drops >= 1 and stats.recoveries >= 1, (
        "the outage never hit the drain"
    )
    assert stats.downtime_s < 0.5, "postcopy downtime must stay bounded"
    assert hot.node.name == "ib02"
    hot.shutdown()


def act2_mpi_evacuation(cluster):
    """Evacuate a live MPI job over the same sick network."""
    env = cluster.env
    vms = repro.provision_vms(cluster, ["ib01", "ib02"], memory_bytes=4 * GiB)
    mpi_job = repro.create_job(cluster, vms, procs_per_vm=1)
    yield from mpi_job.init()
    print(f"[{env.now:7.1f}s] act 2: MPI job up, transports: "
          f"{mpi_job.transports_in_use()}")
    mpi_job.launch(rank_main)
    yield env.timeout(5.0)

    scheduler = repro.CloudScheduler(cluster)
    scheduler.ninja.migration_policy = POLICY
    plan = scheduler.plan_fallback(vms)
    print(f"[{env.now:7.1f}s] evacuating the IB enclosure:\n{plan.describe()}")
    result = yield from scheduler.run_now("degraded-evacuation", plan, mpi_job)
    print(f"[{env.now:7.1f}s] Ninja migration complete: {result.breakdown}")

    for q in vms:
        stats = q.current_migration.stats
        print(f"  {q.vm.name}: mode={stats.mode} rounds={stats.iterations} "
              f"downtime={stats.downtime_s * 1000:.1f} ms")
        # SymVirt froze the ranks, so dirtying stopped and precopy
        # converged — the fallback policy never needed to escalate.
        assert stats.status == "completed"

    yield env.timeout(5.0)
    transports = mpi_job.transports_in_use()
    print(f"[{env.now:7.1f}s] transports now: {transports}")
    print(f"           VM placement: {[q.node.name for q in vms]}")
    assert any("tcp" in t for t in transports), "BTL re-selection failed"

    yield mpi_job.wait()
    print(f"[{env.now:7.1f}s] job finished — survived a lossy WAN without "
          "restarting a process")


def main() -> None:
    cluster = repro.build_agc_cluster(ib_nodes=2, eth_nodes=2)
    env = cluster.env

    def experiment():
        # The network is sick for the whole run: 40 % loss on every link.
        NetworkChaos(
            cluster,
            [DegradationEvent(at_time=0.0, kind="loss", value=0.4)],
        ).start()
        print(f"[{env.now:7.1f}s] chaos armed: 40% packet loss on every link")
        yield from act1_hot_vm(cluster)
        yield from act2_mpi_evacuation(cluster)

    env.process(experiment())
    env.run()


if __name__ == "__main__":
    main()
