#!/usr/bin/env python
"""A non-MPI service surviving an interconnect-transparent migration.

Section VII proposes "a generic communication layer … independent on an
MPI runtime system."  This example uses that layer
(:mod:`repro.symvirt.generic`): a request/response key-value service —
one server VM, two client VMs talking TCP — migrates from the InfiniBand
cluster to the Ethernet cluster mid-stream.  Clients observe one latency
bubble during the Ninja sequence, then continue against the same server
process with all connections transparently re-established.

Run:  python examples/generic_service.py
"""

import repro
from repro.network.tcp import TcpConnection, TcpEndpoint
from repro.symvirt.generic import GenericCoordinator, GenericJob
from repro.units import MiB


REQUEST_BYTES = 4 * MiB
REQUESTS = 300
THINK_TIME_S = 0.4
HORIZON_S = 300.0


def main() -> None:
    cluster = repro.build_agc_cluster(ib_nodes=3, eth_nodes=3)
    env = cluster.env
    vms = repro.provision_vms(cluster, ["ib01", "ib02", "ib03"], attach_ib=False)
    server, clients = vms[0], vms[1:]

    # Shared mutable connection table; the resume callback rebuilds it.
    conns: dict = {}
    latencies: list = []

    def endpoint(qemu):
        node = qemu.node
        iface = qemu.vm.kernel.eth_interface()
        return TcpEndpoint(
            port=iface.driver.port,
            cpu=node.cpu,
            stream_cap_Bps=cluster.calibration.virtio_tcp_stream_Bps,
            node=node,
        )

    def connect_all():
        for client in clients:
            conn = yield from TcpConnection.connect(
                env, endpoint(client), endpoint(server), cluster.calibration
            )
            conns[client.vm.name] = conn

    # --- the generic SymVirt integration -------------------------------
    def prepare(coordinator):
        # Quiesce: sockets cannot survive the move; close them.
        for conn in conns.values():
            conn.close()
        yield env.timeout(0.01)

    def resume(coordinator):
        # Only one coordinator needs to rebuild the shared connections.
        if coordinator.name == "client-0":
            yield from connect_all()
        else:
            yield env.timeout(0)

    coordinators = [
        GenericCoordinator(q, prepare=prepare, resume=resume, name=f"client-{i}")
        for i, q in enumerate(vms)
    ]
    job = GenericJob(cluster, coordinators)

    def client_main(index, client):
        coordinator = coordinators[index + 1]
        for _ in range(REQUESTS):
            yield from coordinator.park_if_requested()
            conn = conns[client.vm.name]
            if not conn.established:
                yield env.timeout(0.05)  # reconnect settling
                continue
            t0 = env.now
            yield conn.send(REQUEST_BYTES, label="req")
            latencies.append((env.now, env.now - t0))
            yield env.timeout(THINK_TIME_S)
            if env.now > HORIZON_S:
                break

    def server_main():
        coordinator = coordinators[0]
        while env.now < HORIZON_S:
            yield from coordinator.park_if_requested()
            yield env.any_of([env.timeout(0.5), coordinator.park_event()])

    def orchestrate():
        yield from connect_all()
        job.launch(
            [server_main(), client_main(0, clients[0]), client_main(1, clients[1])]
        )
        yield env.timeout(30.0)

        # Ninja migration of the whole service to the Ethernet cluster —
        # the exact orchestrator used for MPI jobs, via duck typing.
        ninja = repro.NinjaMigration(cluster)
        plan = ninja.fallback_plan(vms, ["eth01", "eth02", "eth03"])
        result = yield from ninja.execute(job, plan)
        print(f"[{env.now:7.1f}s] service migrated: {result.breakdown}")
        print(f"           placement: {[q.node.name for q in vms]}")

    env.process(orchestrate(), name="orchestrate")
    env.run(until=300.0)

    before = [l for t, l in latencies if t < 30.0]
    after = [l for t, l in latencies if t > 100.0]
    times = sorted(t for t, _ in latencies)
    bubble = max(b - a for a, b in zip(times, times[1:]))
    print(f"requests completed: {len(latencies)}")
    print(f"mean latency before migration: {sum(before)/len(before)*1000:.1f} ms")
    print(f"mean latency after  migration: {sum(after)/len(after)*1000:.1f} ms")
    print(f"service bubble (longest gap between completions): {bubble:.1f} s")
    assert len(after) > 0, "service did not survive the migration"
    assert bubble > 30.0, "expected the Ninja window to show as a gap"


if __name__ == "__main__":
    main()
