#!/usr/bin/env python
"""Use case: high resource utilization via VM consolidation (Section II-A).

An under-utilized HPC job (long compute phases, light communication) is
packed from 4 hosts onto 2, freeing half the hardware; when the job
enters a communication-heavy phase the scheduler spreads it back out.
Interconnect-transparent migration makes both moves possible even though
the consolidation targets are Ethernet-only nodes.

The example quantifies the trade: hosts freed vs iteration slowdown —
including the superlinear penalty once vCPUs are overcommitted.

Run:  python examples/server_consolidation.py
"""

import repro
from repro import workloads
from repro.units import GB, MiB


def main() -> None:
    cluster = repro.build_agc_cluster(ib_nodes=4, eth_nodes=4)
    env = cluster.env
    report: dict = {}

    def experiment():
        vms = repro.provision_vms(cluster, ["ib01", "ib02", "ib03", "ib04"])
        job = repro.create_job(cluster, vms, procs_per_vm=8)  # 32 ranks
        yield from job.init()

        state = {"phase": "4 hosts (IB)"}
        workload = workloads.BcastReduceLoop(
            iterations=60,
            bytes_per_node=4 * GB,
            procs_per_vm=8,
            phase_label=lambda: state["phase"],
        )
        job.launch(workload.rank_main)
        scheduler = repro.CloudScheduler(cluster)

        # Phase 1: steady state on 4 IB hosts.
        yield env.timeout(20.0)

        # Phase 2: utilization is low — consolidate onto 2 Ethernet hosts.
        plan = scheduler.plan_fallback(vms, consolidate_to=2, label="consolidate")
        result = yield from scheduler.run_now("consolidation", plan, job)
        state["phase"] = "2 hosts (TCP)"
        freed = {n.name for n in cluster.ib_nodes()} | {
            n.name for n in cluster.eth_only_nodes() if not n.vms
        }
        report["consolidate"] = result
        print(f"[{env.now:7.1f}s] consolidated: {result.breakdown}")
        print(f"           VMs on: {sorted({q.node.name for q in vms})}")
        print(f"           hosts freed for other tenants: {len(freed)}")
        print(f"           vCPU overcommit: "
              f"{cluster.node('eth01').vcpu_count} vCPUs on "
              f"{cluster.node('eth01').cpu.cores} cores")
        yield env.timeout(120.0)

        # Phase 3: deadline approaching — spread back to the IB cluster.
        plan = scheduler.plan_recovery(vms, label="spread")
        result = yield from scheduler.run_now("deadline", plan, job)
        state["phase"] = "4 hosts (IB)"
        report["spread"] = result
        print(f"[{env.now:7.1f}s] spread back: {result.breakdown}")

        yield job.wait()
        print()
        print(workload.series.render())
        means = workload.series.phase_means()
        slowdown = means["2 hosts (TCP)"] / means["4 hosts (IB)"]
        print(f"\nconsolidation slowdown: {slowdown:.1f}x per iteration "
              f"for 2x fewer hosts")

    env.process(experiment())
    env.run()


if __name__ == "__main__":
    main()
