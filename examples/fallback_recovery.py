#!/usr/bin/env python
"""The paper's demonstration scenario (Section IV-C, Figure 8).

4 VMs run a stepped bcast+reduce MPI job through four phases:

    4 hosts (IB) → 2 hosts (TCP) → 4 hosts (IB) → 4 hosts (TCP)

with a Ninja migration launched every 10 iterations.  The output is the
Figure 8 series: per-iteration elapsed time with the migration overhead
visible at steps 11, 21, and 31.

Run:  python examples/fallback_recovery.py [--ppv {1,8}] [--iterations N]
"""

import argparse

from repro.analysis.experiments import run_fig8_fallback_recovery


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ppv", type=int, default=1, choices=(1, 8),
        help="MPI processes per VM (Figure 8a: 1, Figure 8b: 8)",
    )
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("--migrate-every", type=int, default=10)
    args = parser.parse_args()

    result = run_fig8_fallback_recovery(
        procs_per_vm=args.ppv,
        iterations=args.iterations,
        migrate_every=args.migrate_every,
    )

    print(result.series.render())
    print()
    print("phase means (application time, migration steps excluded):")
    for phase, mean in result.series.phase_means().items():
        print(f"  {phase:<16} {mean:7.1f} s / iteration")
    print()
    print("Ninja migrations:")
    for step, ninja in sorted(result.migrations.items()):
        print(f"  step {step:>2} [{ninja.plan.label}]: {ninja.breakdown}")
    print(f"\ntotal migration overhead: {result.total_overhead_s:.1f} s")


if __name__ == "__main__":
    main()
