#!/usr/bin/env python
"""Use case: surviving an unannounced host failure.

A fiber cut degrades paths; a dead host destroys state.  No migration —
degraded or not — can start from a machine that no longer exists, so
survivability has to be paid for *before* the failure: a fleet
checkpoint service quiesces each job through the SymVirt coordination
path every period and commits a consistent generation to shared NFS.
When a host then dies hard mid-drain, the incident stack classifies the
heartbeat silence, leases spare capacity through the arbiter, and
restores the dead VMs from their last committed generation.

The two numbers that matter:

* **RPO** (recovery point objective) — work lost, measured from the kill
  instant back to the restored generation's consistency point.  Bounded
  by the checkpoint period.
* **RTO** (recovery time objective) — downtime, measured from the first
  anomaly to the restore commit.

Run:  PYTHONPATH=src python examples/host_failure_drill.py
"""

from repro.incident.scenario import run_host_failure_scenario

CHECKPOINT_PERIOD_S = 20.0


def main() -> None:
    print("host-failure drill: 2 jobs drain while the checkpoint service "
          f"ticks every {CHECKPOINT_PERIOD_S:.0f}s ...")
    result = run_host_failure_scenario(
        jobs=2, spares=1, checkpoint_period_s=CHECKPOINT_PERIOD_S
    )

    print(f"  [{result.killed_at_s:7.1f}s] {result.kill_host} dies hard — "
          f"{len(result.vms_lost_at_kill)} VM(s) down, "
          f"{result.generations_committed} checkpoint generation(s) banked")
    for incident in result.incidents:
        if incident["class"] != "host-failure":
            continue
        print(f"  incident #{incident['incident']}: classified "
              f"'{incident['class']}' in {incident['mttd_s']:.2f}s, "
              f"runbook: {' -> '.join(incident['actions'])}")

    print(f"  restored:  {', '.join(result.restored_jobs)} on "
          + ", ".join(
              " ".join(result.final_hosts[j]) for j in result.restored_jobs
          ))
    print(f"  RPO:       {result.rpo_s:6.2f} s  "
          f"(bound: checkpoint period {result.rpo_bound_s:.0f} s)")
    print(f"  RTO:       {result.restore_rto_s:6.2f} s  "
          "(first anomaly -> restore commit)")
    print(f"  lost VMs:  {', '.join(result.lost_vms) or 'none'}")

    assert result.lost_vms == [], "the drill must end with zero lost VMs"
    assert result.rpo_s <= result.rpo_bound_s, "RPO exceeded the period!"
    print("ok: zero lost VMs, RPO within the checkpoint period")


if __name__ == "__main__":
    main()
